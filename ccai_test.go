package ccai

import (
	"bytes"
	"testing"

	"ccai/internal/adaptor"
	"ccai/internal/xpu"
)

func protectedPlatform(t *testing.T, profile xpu.Profile) *Platform {
	t.Helper()
	p, err := NewPlatform(Config{XPU: profile, Mode: Protected})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EstablishTrust(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func vanillaPlatform(t *testing.T, profile xpu.Profile) *Platform {
	t.Helper()
	p, err := NewPlatform(Config{XPU: profile, Mode: Vanilla})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestVanillaTaskRoundTrip(t *testing.T) {
	p := vanillaPlatform(t, xpu.A100)
	input := []byte("hello unprotected world, this is plaintext DMA")
	out, err := p.RunTask(Task{Input: input, Kernel: KernelXOR, Param: 0x5a})
	if err != nil {
		t.Fatal(err)
	}
	for i := range input {
		if out[i] != input[i]^0x5a {
			t.Fatalf("byte %d: got %#x", i, out[i])
		}
	}
}

func TestProtectedTaskRoundTrip(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	input := []byte("confidential patient record: diagnosis code 42-X, model input tensor")
	out, err := p.RunTask(Task{Input: input, Kernel: KernelAdd, Param: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range input {
		if out[i] != input[i]+1 {
			t.Fatalf("byte %d: got %#x, want %#x", i, out[i], input[i]+1)
		}
	}
	// The SC must have actually decrypted and encrypted chunks.
	st := p.SC.Stats()
	if st.DecryptedChunks == 0 || st.EncryptedChunks == 0 {
		t.Fatalf("crypto path not exercised: %+v", st)
	}
	if st.AuthFailures != 0 {
		t.Fatalf("unexpected auth failures: %+v", st)
	}
}

func TestProtectedTaskMultiChunk(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	// > 4 chunks of 256 bytes, with a partial tail chunk.
	input := make([]byte, 1111)
	for i := range input {
		input[i] = byte(i * 7)
	}
	out, err := p.RunTask(Task{Input: input, Kernel: KernelXOR, Param: 0xff})
	if err != nil {
		t.Fatal(err)
	}
	for i := range input {
		if out[i] != input[i]^0xff {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}

func TestProtectedMatchesVanillaResults(t *testing.T) {
	input := []byte("determinism check: both modes compute identical results")
	van := vanillaPlatform(t, xpu.T4)
	pro := protectedPlatform(t, xpu.T4)
	a, err := van.RunTask(Task{Input: input, Kernel: KernelChecksum})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pro.RunTask(Task{Input: input, Kernel: KernelChecksum})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("vanilla %x != protected %x", a, b)
	}
}

// TestMultiXPUCompatibility is the functional core of RQ1/Figure 10:
// the same unmodified driver + Adaptor stack runs every device in the
// fleet.
func TestMultiXPUCompatibility(t *testing.T) {
	input := []byte("one adaptor, one driver, five devices")
	for _, prof := range xpu.Fleet() {
		t.Run(prof.Name, func(t *testing.T) {
			p := protectedPlatform(t, prof)
			out, err := p.RunTask(Task{Input: input, Kernel: KernelAdd, Param: 3})
			if err != nil {
				t.Fatal(err)
			}
			for i := range input {
				if out[i] != input[i]+3 {
					t.Fatalf("%s: byte %d wrong", prof.Name, i)
				}
			}
		})
	}
}

func TestSequentialTasksOneSession(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	for i := 0; i < 5; i++ {
		input := bytes.Repeat([]byte{byte(i + 1)}, 300+i*17)
		out, err := p.RunTask(Task{Input: input, Kernel: KernelXOR, Param: 0x11})
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		for j := range input {
			if out[j] != input[j]^0x11 {
				t.Fatalf("task %d byte %d wrong", i, j)
			}
		}
	}
}

func TestInterruptsDeliveredThroughSC(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	if _, err := p.RunTask(Task{Input: []byte("irq"), Kernel: KernelAdd, Param: 0}); err != nil {
		t.Fatal(err)
	}
	if len(p.Bridge.Interrupts()) == 0 {
		t.Fatal("MSI did not traverse the SC to the host bridge")
	}
}

func TestTaskWithoutTrustRejected(t *testing.T) {
	p, err := NewPlatform(Config{Mode: Protected})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunTask(Task{Input: []byte("x"), Kernel: KernelAdd}); err == nil {
		t.Fatal("task ran without trust establishment")
	}
}

func TestTeardownCleansDeviceAndKeys(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	if _, err := p.RunTask(Task{Input: []byte("leave residue"), Kernel: KernelAdd, Param: 0}); err != nil {
		t.Fatal(err)
	}
	if !p.Device.MemResidue() {
		t.Fatal("expected device residue before teardown")
	}
	p.Close()
	if p.Device.MemResidue() {
		t.Fatal("environment guard left workload residue on the device")
	}
	if p.SC.Params().Active() != 0 {
		t.Fatal("teardown left live stream contexts")
	}
	st := p.SC.Stats()
	if st.Teardowns != 1 {
		t.Fatalf("teardowns = %d", st.Teardowns)
	}
}

func TestEnvResetFallbackForNPU(t *testing.T) {
	p := protectedPlatform(t, xpu.N150d) // no soft reset support
	if _, err := p.RunTask(Task{Input: []byte("npu job"), Kernel: KernelAdd, Param: 0}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if p.Device.ColdBoots() == 0 {
		t.Fatal("NPU teardown should fall back to cold boot")
	}
}

func TestNoOptModeStillCorrect(t *testing.T) {
	opts := adaptor.NoOpt()
	p, err := NewPlatform(Config{Mode: Protected, Adaptor: &opts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	if err := p.EstablishTrust(); err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 700)
	for i := range input {
		input[i] = byte(i)
	}
	out, err := p.RunTask(Task{Input: input, Kernel: KernelXOR, Param: 0x33})
	if err != nil {
		t.Fatal(err)
	}
	for i := range input {
		if out[i] != input[i]^0x33 {
			t.Fatalf("no-opt byte %d wrong", i)
		}
	}
}

func TestOptimizationReducesIOWrites(t *testing.T) {
	run := func(opts adaptor.Options) adaptor.IOStats {
		p, err := NewPlatform(Config{Mode: Protected, Adaptor: &opts})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if err := p.EstablishTrust(); err != nil {
			t.Fatal(err)
		}
		input := make([]byte, 8192) // 32 chunks => 32 tag records
		if _, err := p.RunTask(Task{Input: input, Kernel: KernelAdd, Param: 1}); err != nil {
			t.Fatal(err)
		}
		return p.Adaptor.IO()
	}
	opt := run(adaptor.Optimized())
	noopt := run(adaptor.NoOpt())
	if noopt.MMIOWrites <= opt.MMIOWrites {
		t.Fatalf("batching did not reduce I/O writes: opt=%d noopt=%d", opt.MMIOWrites, noopt.MMIOWrites)
	}
}

func TestEmptyTaskRejected(t *testing.T) {
	p := vanillaPlatform(t, xpu.A100)
	if _, err := p.RunTask(Task{}); err == nil {
		t.Fatal("empty task accepted")
	}
}

// TestAttestationGatesKeyProvisioning models a flashed/compromised xPU:
// the device answers the software-attestation challenge with a digest
// derived from its (wrong) firmware, the SC's golden measurement does
// not match, and trust establishment refuses to hand out keys (§6).
func TestAttestationGatesKeyProvisioning(t *testing.T) {
	p, err := NewPlatform(Config{Mode: Protected, GoldenFirmware: "550.90.07-genuine"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EstablishTrust(); err == nil {
		t.Fatal("compromised firmware attested successfully")
	}
	if p.SC.Params().Active() != 0 {
		t.Fatal("keys provisioned despite failed attestation")
	}
	if _, err := p.RunTask(Task{Input: []byte("x"), Kernel: KernelAdd}); err == nil {
		t.Fatal("task ran on unattested platform")
	}
}
