package ccai

// End-to-end neural-network inference through the protected path: the
// functional counterpart of examples/tinynn, kept in the suite so the
// "model + input confidential, result byte-exact" property is verified
// on every run.

import (
	"bytes"
	"testing"

	"ccai/internal/attack"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

func matVecReluRef(w, x []byte, rows, cols int) []byte {
	out := make([]byte, rows)
	for r := 0; r < rows; r++ {
		var acc int32
		for c := 0; c < cols; c++ {
			acc += int32(int8(w[r*cols+c])) * int32(int8(x[c]))
		}
		acc >>= 6
		if acc < 0 {
			acc = 0
		}
		if acc > 127 {
			acc = 127
		}
		out[r] = byte(acc)
	}
	return out
}

func TestProtectedMLPInference(t *testing.T) {
	const (
		inDim     = 64
		hiddenDim = 16
		outDim    = 4
	)
	rng := sim.NewRand(99)
	w1 := make([]byte, hiddenDim*inDim)
	w2 := make([]byte, outDim*hiddenDim)
	input := make([]byte, inDim)
	rng.Bytes(w1)
	rng.Bytes(w2)
	rng.Bytes(input)

	p := protectedPlatform(t, xpu.A100)
	snoop := attack.NewSnooper()
	p.Host.AddTap(snoop)

	model := append(append([]byte(nil), w1...), w2...)
	modelRegion, err := p.Adaptor.StageH2D("w", model)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Adaptor.ReleaseRegion(modelRegion)
	inputRegion, err := p.Adaptor.StageH2D("x", input)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Adaptor.ReleaseRegion(inputRegion)
	outRegion, err := p.Adaptor.PrepareD2H("y", outDim)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Adaptor.ReleaseRegion(outRegion)

	const (
		devW1 = 0x0000
		devX  = devW1 + hiddenDim*inDim
		devW2 = 0x2000
		devH  = devW2 + outDim*hiddenDim
		devY  = 0x3000
	)
	err = p.Driver.Submit(
		xpu.Command{Op: xpu.OpCopyH2D, Src: modelRegion.Buf.Base(), Dst: devW1, Len: hiddenDim * inDim},
		xpu.Command{Op: xpu.OpCopyH2D, Src: modelRegion.Buf.Base() + hiddenDim*inDim, Dst: devW2, Len: outDim * hiddenDim},
		xpu.Command{Op: xpu.OpCopyH2D, Src: inputRegion.Buf.Base(), Dst: devX, Len: inDim},
		xpu.Command{Op: xpu.OpKernel, Param: xpu.KernelMatVecRelu<<16 | inDim, Src: devW1, Dst: devH, Len: hiddenDim},
		xpu.Command{Op: xpu.OpKernel, Param: xpu.KernelMatVecRelu<<16 | hiddenDim, Src: devW2, Dst: devY, Len: outDim},
		xpu.Command{Op: xpu.OpCopyD2H, Src: devY, Dst: outRegion.Buf.Base(), Len: outDim},
	)
	if err != nil {
		t.Fatal(err)
	}
	head, err := p.Driver.Head()
	if err != nil {
		t.Fatal(err)
	}
	if head != 6 {
		st, _ := p.Driver.Status()
		t.Fatalf("device executed %d/6 commands (status %#x)", head, st)
	}
	scores, err := p.Adaptor.CollectD2H(outRegion, outDim)
	if err != nil {
		t.Fatal(err)
	}

	hidden := matVecReluRef(w1, input, hiddenDim, inDim)
	want := matVecReluRef(w2, hidden, outDim, hiddenDim)
	if !bytes.Equal(scores, want) {
		t.Fatalf("device scores %v != reference %v", scores, want)
	}
	if snoop.SawPlaintext(w1[:48]) || snoop.SawPlaintext(input[:48]) {
		t.Fatal("model or input leaked on the untrusted bus")
	}
}
