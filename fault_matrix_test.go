package ccai

// The fault×invariant matrix: every deterministic fault class of
// internal/fault, injected into a live Protected platform, crossed with
// the eight security invariants of DESIGN.md §6. The contract under
// test is the one the paper's threat model implies but never spells
// out: benign infrastructure failures may cost retries, latency, or —
// at worst — the session (fail closed), but they may never cost a
// single invariant. Each cell runs twice with the same seed and must
// produce an identical outcome signature — chaos here is replayable.
//
// Quickstart: go test -run TestFaultMatrix -v

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ccai/internal/arena"
	"ccai/internal/attack"
	"ccai/internal/core"
	"ccai/internal/fault"
	"ccai/internal/llm"
	"ccai/internal/pcie"
	"ccai/internal/secmem"
	"ccai/internal/xpu"
)

// matrixSeeds are the fixed replay seeds; every cell must be
// deterministic for each of them.
var matrixSeeds = []uint64{0x0c0ffee1, 0x5eed0002, 0xfa117003}

// ivAuditor records every (stream, epoch, counter) consumed by any seal
// engine on either end. A repeat is an IV reuse — the one GCM failure
// no fault is ever allowed to cause.
type ivAuditor struct {
	mu       sync.Mutex
	seen     map[string]map[uint64]bool
	reused   []string
	maxEpoch map[string]uint32
}

func newIVAuditor() *ivAuditor {
	return &ivAuditor{seen: make(map[string]map[uint64]bool), maxEpoch: make(map[string]uint32)}
}

func (a *ivAuditor) hook(stream string) func(epoch, counter uint32) {
	return func(epoch, counter uint32) {
		a.mu.Lock()
		defer a.mu.Unlock()
		m := a.seen[stream]
		if m == nil {
			m = make(map[uint64]bool)
			a.seen[stream] = m
		}
		k := uint64(epoch)<<32 | uint64(counter)
		if m[k] {
			a.reused = append(a.reused, fmt.Sprintf("%s epoch=%d counter=%d", stream, epoch, counter))
		}
		m[k] = true
		if epoch > a.maxEpoch[stream] {
			a.maxEpoch[stream] = epoch
		}
	}
}

func (a *ivAuditor) reuses() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.reused...)
}

func (a *ivAuditor) epoch(stream string) uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxEpoch[stream]
}

// matrixEvent derives the cell's injection schedule from the seed:
// small skips so scarce injection points (doorbells, MSIs) still get
// hit, and a count the recovery budget can absorb.
func matrixEvent(class fault.Class, seed uint64) fault.Plan {
	skip := int((seed >> 4) % 3)
	count := 1 + int(seed%2)
	switch class {
	case fault.DoorbellHang, fault.DropMSI,
		fault.HeadWritebackLoss, fault.HeadRegress, fault.DuplicateCplBurst:
		// Scarce injection points: one doorbell (and so one completion
		// writeback) per task, so large skips would miss the episode.
		skip = int(seed % 2)
	}
	return fault.Single(seed, class, skip, count)
}

// wireFault threads the injector into the class's injection point.
func wireFault(p *Platform, inj *fault.Injector, class fault.Class) {
	switch class {
	case fault.DoorbellHang, fault.DropMSI:
		p.Device.SetFaultHook(inj.DeviceFault)
	case fault.CryptoTransient:
		p.Adaptor.InstallCryptoFault(inj.CryptoFault)
	case fault.TagLoss:
		p.SC.Tags().SetFaultHook(inj.TagFault)
	default: // link-level classes ride the untrusted host segment
		p.Host.AddTap(inj)
	}
}

// runMatrixCell injects one fault class with one seed into a live
// platform, checks all eight §6 invariants, and returns (signature,
// fired). The signature captures everything observable about the cell's
// outcome; determinism is asserted by running the cell twice.
func runMatrixCell(t *testing.T, class fault.Class, seed uint64) (string, uint64) {
	t.Helper()
	p := protectedPlatform(t, xpu.A100)

	audit := newIVAuditor()
	for _, s := range []string{core.StreamH2D, core.StreamConfig} {
		if err := p.Adaptor.AuditIVs(s, audit.hook(s)); err != nil {
			t.Fatal(err)
		}
	}
	// The SC is the d2h seal side.
	if d2h, err := p.SC.Params().Stream(core.StreamD2H); err == nil {
		d2h.SetIVAudit(audit.hook(core.StreamD2H))
	}

	snoop := attack.NewSnooper()
	rec := &attack.Recorder{Match: func(pk *pcie.Packet) bool {
		return pk.Kind == pcie.MWr && pk.Requester == TVMID
	}}
	p.Host.AddTap(snoop)
	p.Host.AddTap(rec)

	inj := fault.NewInjector(matrixEvent(class, seed))
	wireFault(p, inj, class)

	// --- fault episode: two tasks under injection --------------------
	in1, in2 := taskInput(), []byte("matrix cell second task, shorter payload")
	out1, err1 := p.RunTask(Task{Input: in1, Kernel: KernelXOR, Param: 0x5a})
	out2, err2 := p.RunTask(Task{Input: in2, Kernel: KernelAdd, Param: 3})

	// I2/I3-corollary: correct output or a reported error — a fault must
	// never yield silently wrong data.
	if err1 == nil {
		for i := range in1 {
			if out1[i] != in1[i]^0x5a {
				t.Fatalf("I2 violated: task1 byte %d silently corrupted under %v", i, class)
			}
		}
	}
	if err2 == nil {
		for i := range in2 {
			if out2[i] != in2[i]+3 {
				t.Fatalf("I2 violated: task2 byte %d silently corrupted under %v", i, class)
			}
		}
	}

	// I1: no plaintext on the untrusted segment, fault or no fault.
	if snoop.SawPlaintext(secret) {
		t.Fatalf("I1 violated: plaintext secret on host bus under %v", class)
	}
	if snoop.PayloadBytes() == 0 {
		t.Fatalf("snooper saw no traffic under %v; cell vacuous", class)
	}

	fired := inj.TotalFired()
	recStats := p.Adaptor.Recovery()
	trustedAfter := p.trusted

	// Probe phase: the injector tap leaves the bus (its episode is
	// over); device/crypto/tag hooks stay installed.
	p.Host.ClearTaps()

	// I8: IV exhaustion forces rekey before reuse. Only reachable while
	// the session survived the episode; a fail-closed session has no
	// streams left to exhaust (which itself satisfies the invariant).
	if trustedAfter {
		epochBefore := audit.epoch(core.StreamH2D)
		if err := p.Adaptor.ForceStreamCounter(core.StreamH2D, ^uint32(0)-8); err != nil {
			t.Fatal(err)
		}
		out3, err3 := p.RunTask(Task{Input: []byte("exhaustion probe"), Kernel: KernelAdd, Param: 1})
		if err3 != nil {
			t.Fatalf("I8 probe task failed under %v: %v", class, err3)
		}
		if out3[0] != 'e'+1 {
			t.Fatalf("I8 probe output wrong under %v", class)
		}
		if audit.epoch(core.StreamH2D) <= epochBefore {
			t.Fatalf("I8 violated: counter at 2^32-9 did not force a rekey under %v", class)
		}
	}

	// I3: replayed protected traffic is rejected — no fresh decryptions,
	// no device-visible progress.
	if len(rec.Captured) == 0 {
		t.Fatalf("recorder captured nothing under %v", class)
	}
	decBefore := p.SC.Stats().DecryptedChunks
	rec.Replay(p.Host)
	if p.SC.Stats().DecryptedChunks != decBefore {
		t.Fatalf("I3 violated: replay caused fresh decryptions under %v", class)
	}

	// I4: unauthorized requesters stay blocked after the fault episode.
	rogue := &attack.RogueRequester{ID: pcie.MakeID(0, 9, 0), Bus: p.Host}
	droppedBefore := p.SC.Stats().Filter.Dropped
	rogue.Write(xpuBARBase+xpu.RegDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	if cpl := rogue.Read(xpuBARBase+xpu.RegStatus, 8); cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatalf("I4 violated: rogue requester read device state under %v", class)
	}
	if p.SC.Stats().Filter.Dropped <= droppedBefore {
		t.Fatalf("I4 violated: L1 filter did not drop rogue traffic under %v", class)
	}

	// I5: config injection without the config key still fails.
	rejBefore := p.SC.Stats().ConfigRejects
	garbage := make([]byte, 4+secmem.TagSize+32)
	for i := range garbage {
		garbage[i] = byte(i*7 + 1)
	}
	p.Host.Route(pcie.NewMemWrite(TVMID, scBARBase+core.RegRuleWindow, garbage))
	p.Host.Route(pcie.NewMemWrite(TVMID, scBARBase+core.RegRuleDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0}))
	if p.SC.Stats().ConfigRejects <= rejBefore {
		t.Fatalf("I5 violated: unsealed rule upload accepted under %v", class)
	}

	// I6: teardown leaves no residue and no keys, whether the session
	// failed closed mid-episode or is torn down now. Teardown is
	// idempotent, so a lost teardown write is re-issued like a real
	// driver would.
	p.Adaptor.Teardown()
	if p.Device.MemResidue() {
		t.Fatalf("I6 violated: workload residue on device after teardown under %v", class)
	}
	if n := p.SC.Params().Active(); n != 0 {
		t.Fatalf("I6 violated: %d live stream contexts after teardown under %v", n, class)
	}
	if p.scKeys.Count() != 0 || p.tvmKeys.Count() != 0 {
		t.Fatalf("I6 violated: key material survived teardown under %v", class)
	}

	// No injected fault may ever cause an IV reuse (cross-cutting
	// corollary of I8 that every cell checks).
	if r := audit.reuses(); len(r) != 0 {
		t.Fatalf("IV REUSE under %v: %v", class, r)
	}

	// I7: attestation of a flashed device still fails under this fault
	// class (fault hooks that exist pre-trust are wired; key-dependent
	// ones cannot exist before keys do).
	p7, err := NewPlatform(Config{XPU: xpu.A100, Mode: Protected, GoldenFirmware: "flashed-rogue-firmware-v666"})
	if err != nil {
		t.Fatal(err)
	}
	inj7 := fault.NewInjector(matrixEvent(class, seed))
	switch class {
	case fault.DoorbellHang, fault.DropMSI:
		p7.Device.SetFaultHook(inj7.DeviceFault)
	case fault.CryptoTransient, fault.TagLoss:
		// no pre-trust injection point
	default:
		p7.Host.AddTap(inj7)
	}
	if err := p7.EstablishTrust(); err == nil {
		t.Fatalf("I7 violated: flashed firmware attested under %v", class)
	}

	sig := fmt.Sprintf("err1=%v err2=%v fired=%d trusted=%v rec=%+v log=%v",
		err1 != nil, err2 != nil, fired, trustedAfter, recStats, inj.Log())
	return sig, fired
}

// TestFaultMatrix is the headline chaos suite: |fault classes| × 8
// invariants × len(matrixSeeds), each cell replayed twice to prove
// determinism.
func TestFaultMatrix(t *testing.T) {
	firedByClass := make(map[fault.Class]uint64)
	for _, class := range fault.Classes() {
		if class == fault.SchedStall || class == fault.CancelRace {
			// Scheduler-level classes have no injection point on a bare
			// Platform; TestSchedulerFaultMatrix covers them.
			continue
		}
		for _, seed := range matrixSeeds {
			class, seed := class, seed
			t.Run(fmt.Sprintf("%v/seed=%#x", class, seed), func(t *testing.T) {
				sig1, fired := runMatrixCell(t, class, seed)
				sig2, _ := runMatrixCell(t, class, seed)
				if sig1 != sig2 {
					t.Fatalf("cell is nondeterministic:\n run1: %s\n run2: %s", sig1, sig2)
				}
				firedByClass[class] += fired
			})
		}
	}
	// The matrix is only meaningful if the faults actually landed.
	landed := 0
	for class, n := range firedByClass {
		t.Logf("class %v fired %d times across seeds", class, n)
		if n > 0 {
			landed++
		}
	}
	if landed < 6 {
		t.Fatalf("only %d fault classes ever fired; matrix needs ≥6 live classes", landed)
	}
}

// --- mid-pipeline fault class (DESIGN.md §10) --------------------------------

// arenaHoldsSecret drains a sample of pooled buffers across the
// arena's size classes and scans them for the canary. Arena buffers
// are reused without zeroing on the public-bytes path (Put), so any
// hit means plaintext went through Put instead of PutZero — the
// memory-discipline violation the streaming pipeline must never
// commit, fault or no fault.
func arenaHoldsSecret(canary []byte) bool {
	leaked := false
	for _, class := range []int{64, 128, 256, 512, 1024, 4096, 65536} {
		var bufs [][]byte
		for i := 0; i < 32; i++ {
			b := arena.Get(class)
			if bytes.Contains(b, canary) {
				leaked = true
			}
			bufs = append(bufs, b)
		}
		for _, b := range bufs {
			arena.Put(b)
		}
	}
	return leaked
}

// TestMidPipelineFaults targets the streaming staging pipeline
// specifically: the fault skips are tuned so the injection lands in
// the middle of a 256-chunk H2D staging run, not at its edges. The
// contract is the recovery ladder's — a mid-pipeline fault costs
// retries or (at worst) the session, never an invariant: no silently
// wrong output, no plaintext on the host segment, no IV reuse, and no
// plaintext left behind in pooled datapath buffers.
func TestMidPipelineFaults(t *testing.T) {
	cases := []struct {
		class fault.Class
		skip  int
	}{
		// CryptoTransient at skip 100: the engine faults while the
		// pipeline still has ~150 chunks to seal; the abort consumes no
		// counters and the retry reuses the same IV range.
		{fault.CryptoTransient, 100},
		// TagLoss at skip 130: the Tag Manager drops a record mid-table;
		// the device's span read over that chunk fails closed until the
		// recovery ladder reposts the table.
		{fault.TagLoss, 130},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.class.String(), func(t *testing.T) {
			p := protectedPlatform(t, xpu.A100)

			audit := newIVAuditor()
			for _, s := range []string{core.StreamH2D, core.StreamConfig} {
				if err := p.Adaptor.AuditIVs(s, audit.hook(s)); err != nil {
					t.Fatal(err)
				}
			}
			snoop := attack.NewSnooper()
			p.Host.AddTap(snoop)

			inj := fault.NewInjector(fault.Single(0x717e11e, tc.class, tc.skip, 2))
			wireFault(p, inj, tc.class)

			// 64 KiB input (256 chunks through the pipeline) with the
			// canary embedded mid-stream, near the injection point.
			in := make([]byte, 64<<10)
			for i := range in {
				in[i] = byte(i * 11)
			}
			copy(in[130*256:], secret)
			out, err := p.RunTask(Task{Input: in, Kernel: KernelXOR, Param: 0x5a})

			if inj.TotalFired() == 0 {
				t.Fatalf("fault never fired; skip %d missed the pipeline", tc.skip)
			}
			if err == nil {
				for i := range in {
					if out[i] != in[i]^0x5a {
						t.Fatalf("silently corrupted output byte %d under mid-pipeline %v", i, tc.class)
					}
				}
				rec := p.Adaptor.Recovery()
				if rec.Retries+rec.CryptoRetries+rec.Reposts == 0 {
					t.Fatalf("task survived mid-pipeline %v without any recovery activity: %+v", tc.class, rec)
				}
			} else if p.trusted {
				t.Fatalf("mid-pipeline %v failed the task (%v) without failing closed", tc.class, err)
			}

			if snoop.SawPlaintext(secret) {
				t.Fatalf("plaintext canary on host bus under mid-pipeline %v", tc.class)
			}
			if r := audit.reuses(); len(r) != 0 {
				t.Fatalf("IV reuse under mid-pipeline %v: %v", tc.class, r)
			}
			if arenaHoldsSecret(secret) {
				t.Fatalf("plaintext canary left in pooled buffer under mid-pipeline %v", tc.class)
			}
		})
	}
}

// --- rekey-mid-decode fault class (DESIGN.md §16) ----------------------------

// TestRekeyMidDecode pins the KV-residency contract under counter
// pressure: an H2D rekey landing between two decode steps of a live
// inference session must trip the session's epoch fence, must NOT
// re-stage the KV-cache (the resident ciphertext belongs to the fenced
// epoch; only fresh per-step traffic moves to the new one), and must
// not perturb a single output byte. Matrix style, the episode runs
// twice and must produce an identical outcome signature.
func TestRekeyMidDecode(t *testing.T) {
	run := func() string {
		mp := llmChassis(t, []xpu.Profile{xpu.A100},
			WithLLMEngine(llm.EngineConfig{Workers: 1}))
		defer mp.Close()
		tenant := mp.Tenants[0]

		// Tap: count device reads against the session's KV bounce buffer.
		var (
			sessMu  sync.Mutex
			sess    *InferenceSession
			kvReads atomic.Int64
		)
		mp.Host.AddTap(pcie.TapFunc(func(p *pcie.Packet) *pcie.Packet {
			if p.Kind != pcie.MRd {
				return p
			}
			sessMu.Lock()
			s := sess
			sessMu.Unlock()
			if s == nil {
				return p
			}
			s.mu.Lock()
			r := s.kvRegion
			s.mu.Unlock()
			if r != nil && r.Buf.Contains(p.Address) {
				kvReads.Add(1)
			}
			return p
		}))
		defer mp.Host.ClearTaps()

		// The dispatcher probes the fault hook once per step. Steps run
		// prefill, decode#1, decode#2, decode#3 — the third probe fires the
		// rekey, so it lands exactly between decode#1 and decode#2.
		var probes atomic.Int64
		mp.SetLLMFaultHook(func(point string) bool {
			if point != fault.SchedPointDequeue {
				return false
			}
			if probes.Add(1) == 3 {
				if err := tenant.Adaptor.RekeyStream(core.StreamH2D); err != nil {
					t.Errorf("mid-decode rekey: %v", err)
				}
			}
			return false
		})

		cfg := llm.Config{MaxNewTokens: 32, ChunkTokens: 8, MaxPromptTokens: 16, Seed: 0x5eed}
		s, err := tenant.OpenSession(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		sessMu.Lock()
		sess = s
		sessMu.Unlock()
		ch, err := s.Decode(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		prompt := []byte("rekey mid decode episode")
		if err := s.Prefill(context.Background(), prompt); err != nil {
			t.Fatal(err)
		}
		stagedReads := kvReads.Load() // prefill done: KV image is resident

		got := collectStream(t, ch)
		want := expectedStream(cfg, prompt)
		if !bytes.Equal(got, want) {
			t.Fatal("token stream corrupted by mid-decode rekey")
		}
		if !s.KVFenced() {
			t.Fatal("epoch fence did not trip: rekey invisible to the session")
		}
		cur := tenant.Adaptor.StreamEpoch(core.StreamH2D)
		if s.KVSealEpoch() >= cur {
			t.Fatalf("KV seal epoch %d not behind stream epoch %d after rekey", s.KVSealEpoch(), cur)
		}
		if extra := kvReads.Load() - stagedReads; extra != 0 {
			t.Fatalf("rekey re-staged the KV-cache: %d extra PCIe reads after prefill", extra)
		}
		if stagedReads == 0 {
			t.Fatal("vacuous cell: KV staging never crossed the tap")
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		sessMu.Lock()
		sess = nil
		sessMu.Unlock()
		return fmt.Sprintf("reads=%d fenced=%v seal=%d cur=%d bytes=%d",
			stagedReads, true, s.KVSealEpoch(), cur, len(got))
	}
	sig1 := run()
	sig2 := run()
	if sig1 != sig2 {
		t.Fatalf("rekey-mid-decode cell is nondeterministic:\n run1: %s\n run2: %s", sig1, sig2)
	}
}
