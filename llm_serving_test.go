package ccai

// Continuous token-level LLM serving tests (DESIGN.md §16): the
// streaming Session API happy path, the acceptance gate pinning that
// KV-cache bytes cross PCIe once per session (not once per decode
// step), same-seed determinism of multi-session interleaving, the
// typed error taxonomy, and deterministic resource release on Close.
//
// Quickstart: go test -race -run 'TestLLM|TestKVStagedOnce|TestDecodeDeterminism' -v

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccai/internal/fault"
	"ccai/internal/llm"
	"ccai/internal/pcie"
	"ccai/internal/sched"
	"ccai/internal/xpu"
)

// llmChassis builds a trusted chassis with the given engine config.
func llmChassis(t *testing.T, profiles []xpu.Profile, opts ...Option) *MultiPlatform {
	t.Helper()
	mp, err := NewMultiPlatform(profiles, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mp.Close)
	if err := mp.EstablishTrustAll(); err != nil {
		t.Fatal(err)
	}
	return mp
}

// collectStream drains a session's decode channel with a hang guard,
// returning the concatenated token bytes.
func collectStream(t *testing.T, ch <-chan DecodeChunk) []byte {
	t.Helper()
	var out []byte
	next := 0
	deadline := time.After(30 * time.Second)
	for {
		select {
		case c, ok := <-ch:
			if !ok {
				return out
			}
			if c.Err != nil {
				t.Fatalf("stream aborted: %v", c.Err)
			}
			if c.Index != next {
				t.Fatalf("chunk %d out of order, want %d", c.Index, next)
			}
			next++
			out = append(out, c.Tokens...)
		case <-deadline:
			t.Fatal("decode stream stalled")
		}
	}
}

// expectedStream computes the host-side oracle: the byte stream the
// device must produce if (and only if) the KV-cache stayed resident
// and uncorrupted across every step.
func expectedStream(cfg llm.Config, prompt []byte) []byte {
	if err := cfg.Normalize(); err != nil {
		panic(err)
	}
	digest := llm.Digest(cfg.Seed, prompt)
	kv := llm.KVInit(digest, cfg.KVBytes(cfg.MaxPromptTokens))
	var out []byte
	for c := 0; c < cfg.Chunks(); c++ {
		span := int64(cfg.ChunkSpan(c) * cfg.TokenBytes)
		out = append(out, llm.ExpectedChunk(kv, digest, c, span)...)
	}
	return out
}

func TestLLMSessionStreamsExpectedTokens(t *testing.T) {
	mp := llmChassis(t, []xpu.Profile{xpu.A100, xpu.T4})
	cfg := llm.Config{MaxNewTokens: 48, ChunkTokens: 8, MaxPromptTokens: 32, Seed: 11}

	type run struct {
		sess   *InferenceSession
		prompt []byte
		ch     <-chan DecodeChunk
	}
	var runs []run
	for ti, tenant := range mp.Tenants {
		for s := 0; s < 2; s++ {
			c := cfg
			c.Seed = uint64(100*ti + s)
			prompt := []byte(fmt.Sprintf("tenant %d session %d: summarize the ccAI paper", ti, s))
			sess, err := tenant.OpenSession(context.Background(), c)
			if err != nil {
				t.Fatal(err)
			}
			ch, err := sess.Decode(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.Prefill(context.Background(), prompt); err != nil {
				t.Fatal(err)
			}
			runs = append(runs, run{sess: sess, prompt: prompt, ch: ch})
		}
	}
	for i, r := range runs {
		got := collectStream(t, r.ch)
		c := cfg
		c.Seed = uint64(100*(i/2) + i%2)
		want := expectedStream(c, r.prompt)
		if len(got) != len(want) {
			t.Fatalf("run %d: stream %d bytes, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d: stream byte %d = %#x, want %#x", i, j, got[j], want[j])
			}
		}
		if err := r.sess.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if used := mp.Engine().KVInUse(); used != 0 {
		t.Fatalf("KV budget leak: %d bytes still reserved after Close", used)
	}
}

// TestKVStagedOncePerSession is the acceptance gate: a PCIe bus tap
// counts device read requests (the DMA that pulls sealed staging into
// the device) against each session's KV bounce buffer. Two sessions
// with identical KV reservations but an 8× difference in decode-step
// count must show IDENTICAL KV-read totals — KV bytes cross PCIe once
// per session, never once per decode step.
func TestKVStagedOncePerSession(t *testing.T) {
	mp := llmChassis(t, []xpu.Profile{xpu.A100})
	tenant := mp.Tenants[0]

	// The KV bounce buffer isn't known until prefill stages it; the tap
	// tracks whatever region the current session holds.
	var (
		regMu   sync.Mutex
		cur     *InferenceSession
		kvReads atomic.Int64
	)
	mp.Host.AddTap(pcie.TapFunc(func(p *pcie.Packet) *pcie.Packet {
		if p.Kind != pcie.MRd {
			return p
		}
		regMu.Lock()
		s := cur
		regMu.Unlock()
		if s == nil {
			return p
		}
		s.mu.Lock()
		r := s.kvRegion
		s.mu.Unlock()
		if r != nil && r.Buf.Contains(p.Address) {
			kvReads.Add(1)
		}
		return p
	}))
	defer mp.Host.ClearTaps()

	// runSession streams one full session and returns its KV-read total.
	// maxPrompt is chosen so both sessions reserve the same KV bytes —
	// (prompt+new)×KVBytesPerToken — otherwise MaxReadReq splitting
	// would make the raw MRd counts differ for size reasons alone.
	runSession := func(maxNew, maxPrompt int) int64 {
		t.Helper()
		cfg := llm.Config{MaxNewTokens: maxNew, ChunkTokens: 8, TokenBytes: 4, MaxPromptTokens: maxPrompt, Seed: 3}
		sess, err := tenant.OpenSession(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		regMu.Lock()
		cur = sess
		regMu.Unlock()
		kvReads.Store(0)
		ch, err := sess.Decode(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Prefill(context.Background(), []byte("pin the kv residency contract")); err != nil {
			t.Fatal(err)
		}
		if got := collectStream(t, ch); len(got) != maxNew*cfg.TokenBytes {
			t.Fatalf("stream %d bytes, want %d", len(got), maxNew*cfg.TokenBytes)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		regMu.Lock()
		cur = nil
		regMu.Unlock()
		return kvReads.Load()
	}

	shortReads := runSession(8, 72) // 1 chunk: prefill only, 0 decode steps
	longReads := runSession(64, 16) // 8 chunks: prefill + 7 decode steps; same 80-token KV
	if shortReads == 0 {
		t.Fatal("vacuous gate: no device reads hit the KV bounce buffer during prefill")
	}
	if longReads != shortReads {
		t.Fatalf("KV bounce-buffer reads scale with decode steps: %d (0 decode steps) vs %d (7 decode steps) — KV must be staged over PCIe once per session",
			shortReads, longReads)
	}
}

// TestDecodeDeterminism pins same-seed byte determinism for a
// multi-session decode interleaving: two independent runs must produce
// byte-identical token streams and identical admission order, with the
// sessions genuinely interleaved (prefills race, decode steps yield
// between sessions) — the streams owe nothing to scheduling luck
// because each is a pure function of (seed, prompt) and the resident
// KV, not of step order.
func TestDecodeDeterminism(t *testing.T) {
	type result struct {
		streams [][]byte
		admits  []uint64
		log     []llm.StepRecord
	}
	run := func() result {
		mp := llmChassis(t, []xpu.Profile{xpu.A100, xpu.A100},
			WithLLMEngine(llm.EngineConfig{Workers: 1}))
		defer mp.Close()
		// Hold the dispatcher (via the deterministic fault probe) until
		// every session's prefill is queued: without the gate a single
		// fast worker can drain one session to completion before the
		// other prefill goroutines even land, and the interleaving
		// assertion below would be at the mercy of goroutine timing.
		var gate atomic.Bool
		gate.Store(true)
		mp.SetLLMFaultHook(func(point string) bool {
			return point == fault.SchedPointDequeue && gate.Load()
		})
		var sessions []*InferenceSession
		var chans []<-chan DecodeChunk
		var prompts [][]byte
		// Admission is sequential — the deterministic admit order the
		// engine must reproduce run-over-run.
		for ti, tenant := range mp.Tenants {
			for si := 0; si < 2; si++ {
				cfg := llm.Config{MaxNewTokens: 48 + 8*si, ChunkTokens: 4,
					MaxPromptTokens: 16, Seed: uint64(10*ti + si)}
				sess, err := tenant.OpenSession(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				ch, err := sess.Decode(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				sessions = append(sessions, sess)
				chans = append(chans, ch)
				prompts = append(prompts, []byte(fmt.Sprintf("deterministic prompt %d/%d", ti, si)))
			}
		}
		// Prefills race: all sessions go live together, so the single
		// dispatcher interleaves their prefill and decode steps.
		errs := make(chan error, len(sessions))
		for i := range sessions {
			go func(i int) {
				errs <- sessions[i].Prefill(context.Background(), prompts[i])
			}(i)
		}
		deadline := time.Now().Add(10 * time.Second)
		for mp.Engine().Pending() < len(sessions) {
			if time.Now().After(deadline) {
				t.Fatal("prefills never queued")
			}
			runtime.Gosched()
		}
		gate.Store(false)
		for range sessions {
			if err := <-errs; err != nil {
				t.Error(err)
			}
		}
		if t.Failed() {
			t.FailNow()
		}
		var res result
		for i, ch := range chans {
			res.streams = append(res.streams, collectStream(t, ch))
			sessions[i].Close()
		}
		res.admits = mp.Engine().AdmitOrder()
		res.log = mp.Engine().StepLog()
		return res
	}
	a, b := run(), run()
	if len(a.streams) != len(b.streams) {
		t.Fatalf("stream counts differ: %d vs %d", len(a.streams), len(b.streams))
	}
	for i := range a.streams {
		if len(a.streams[i]) == 0 {
			t.Fatalf("session %d produced no tokens", i)
		}
		if string(a.streams[i]) != string(b.streams[i]) {
			t.Fatalf("session %d: token streams differ between runs", i)
		}
	}
	if len(a.admits) != len(b.admits) {
		t.Fatal("admit orders differ in length")
	}
	for i := range a.admits {
		if a.admits[i] != b.admits[i] {
			t.Fatalf("admit order differs at %d: %d vs %d", i, a.admits[i], b.admits[i])
		}
	}
	// The dispatch log must show sessions alternating — continuous
	// batching, not run-to-completion. (The log's exact order is
	// timing-dependent — prefills race admission — which is exactly why
	// the byte-determinism above cannot come from scheduling luck.)
	switches := 0
	for i := 1; i < len(a.log); i++ {
		if a.log[i].Session != a.log[i-1].Session {
			switches++
		}
	}
	if switches < len(a.streams) {
		t.Fatalf("only %d session switches across %d steps: not continuous batching", switches, len(a.log))
	}
}

// TestLLMErrorTaxonomy pins the errors.Is paths of the session API.
func TestLLMErrorTaxonomy(t *testing.T) {
	mp := llmChassis(t, []xpu.Profile{xpu.A100},
		WithKVBudget(4096)) // one small session's worth
	tenant := mp.Tenants[0]
	small := llm.Config{MaxNewTokens: 8, ChunkTokens: 4, MaxPromptTokens: 8,
		TokenBytes: 4, KVBytesPerToken: 64, Seed: 1}

	open := func() (*InferenceSession, error) {
		return tenant.OpenSession(context.Background(), small)
	}
	sess, err := open()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		err  func() error
		want []error
	}{
		{"kv budget exceeded at admission", func() error {
			_, err := open() // budget 4096, first session holds (8+8)*64=1024... open until it trips
			for err == nil {
				_, err = open()
			}
			return err
		}, []error{ErrKVBudgetExceeded, llm.ErrKVBudget}},
		{"oversized session vs device window", func() error {
			big := small
			big.MaxNewTokens = 4096
			big.KVBytesPerToken = 512
			_, err := tenant.OpenSession(context.Background(), big)
			return err
		}, []error{ErrKVBudgetExceeded}},
		{"prompt overruns reservation", func() error {
			return sess.Prefill(context.Background(), make([]byte, 8*small.TokenBytes+1))
		}, []error{ErrKVBudgetExceeded}},
		{"empty prompt", func() error {
			return sess.Prefill(context.Background(), nil)
		}, []error{ErrEmptyInput}},
	}
	for _, tc := range cases {
		err := tc.err()
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		for _, want := range tc.want {
			if !errors.Is(err, want) {
				t.Fatalf("%s: %v does not match %v", tc.name, err, want)
			}
		}
	}

	// Stream abort via consumer context: the final chunk carries
	// ErrStreamAborted wrapping context.Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := sess.Decode(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.After(10 * time.Second)
	var aborted error
	for aborted == nil {
		select {
		case c, ok := <-ch:
			if !ok {
				t.Fatal("stream closed without an Err chunk")
			}
			if c.Err != nil {
				aborted = c.Err
			}
		case <-deadline:
			t.Fatal("abort chunk never arrived")
		}
	}
	if !errors.Is(aborted, ErrStreamAborted) || !errors.Is(aborted, context.Canceled) {
		t.Fatalf("abort err %v: want ErrStreamAborted wrapping context.Canceled", aborted)
	}

	// Closed-session operations.
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Prefill(context.Background(), []byte("late")); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Prefill after Close: %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Decode(context.Background()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Decode after Close: %v, want ErrSessionClosed", err)
	}

	// Device-slot exhaustion maps to ErrQueueFull.
	mp2 := llmChassis(t, []xpu.Profile{xpu.A100})
	var open2 []*InferenceSession
	var slotErr error
	for i := 0; i < 64; i++ {
		s, err := mp2.Tenants[0].OpenSession(context.Background(), small)
		if err != nil {
			slotErr = err
			break
		}
		open2 = append(open2, s)
	}
	if slotErr == nil {
		t.Fatal("session slots never exhausted")
	}
	if !errors.Is(slotErr, ErrQueueFull) && !errors.Is(slotErr, sched.ErrQueueFull) {
		t.Fatalf("slot exhaustion err %v, want ErrQueueFull", slotErr)
	}
	for _, s := range open2 {
		s.Close()
	}
}

// TestLLMCloseReleasesDeterministically pins that Close frees the KV
// reservation and device slot synchronously — a close/reopen loop at
// the budget edge never wedges.
func TestLLMCloseReleasesDeterministically(t *testing.T) {
	cfg := llm.Config{MaxNewTokens: 16, ChunkTokens: 8, MaxPromptTokens: 16, Seed: 5}
	var c = cfg
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	mp := llmChassis(t, []xpu.Profile{xpu.A100},
		WithKVBudget(c.KVBytes(c.MaxPromptTokens))) // exactly one session fits
	tenant := mp.Tenants[0]
	for i := 0; i < 5; i++ {
		sess, err := tenant.OpenSession(context.Background(), cfg)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		ch, err := sess.Decode(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Prefill(context.Background(), []byte("close-release loop")); err != nil {
			t.Fatal(err)
		}
		collectStream(t, ch)
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		if used := mp.Engine().KVInUse(); used != 0 {
			t.Fatalf("iteration %d: %d KV bytes leaked after Close", i, used)
		}
	}
}
