// Package ccai is the public API of the ccAI reproduction: a compatible
// and confidential system for xPU-based AI computing (MICRO '25). It
// assembles the simulated platform — a Trusted VM with an unmodified
// native driver, a host PCIe bus, the PCIe Security Controller
// (PCIe-SC), an internal bus, and one of five xPU device models — and
// exposes secure task execution, trust establishment, and the
// experiment harness that regenerates the paper's tables and figures.
//
// Quickstart:
//
//	plat, _ := ccai.New(ccai.WithXPU(xpu.A100), ccai.WithMode(ccai.Protected))
//	defer plat.Close()
//	out, _ := plat.RunTask(ccai.Task{Input: data, Kernel: ccai.KernelXOR, Param: 0x5a})
//
// For multi-tenant serving with admission control, backpressure and
// cancellation, see MultiPlatform.NewScheduler.
package ccai

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"ccai/internal/adaptor"
	"ccai/internal/arena"
	"ccai/internal/core"
	"ccai/internal/hrot"
	"ccai/internal/llm"
	"ccai/internal/mem"
	"ccai/internal/obsv"
	"ccai/internal/pcie"
	"ccai/internal/secmem"
	"ccai/internal/telemetry"
	"ccai/internal/tvm"
	"ccai/internal/xpu"
)

// Mode selects whether the platform runs vanilla (xPU directly on the
// host bus) or protected (PCIe-SC interposed).
type Mode int

const (
	// Vanilla is the unprotected baseline every figure compares
	// against.
	Vanilla Mode = iota
	// Protected interposes the PCIe-SC and routes staging through the
	// Adaptor.
	Protected
)

func (m Mode) String() string {
	if m == Vanilla {
		return "vanilla"
	}
	return "ccAI"
}

// Fixed platform address map.
const (
	privateBase = 0x1000_0000
	privateSize = 64 << 20
	sharedBase  = 0x8000_0000
	sharedSize  = 64 << 20
	msiBase     = 0xfee0_0000
	msiSize     = 0x10_0000
	xpuBARBase  = 0xd000_0000
	scBARBase   = 0xd010_0000
)

// Bus/device identities.
var (
	// HostBridgeID is the root complex / memory controller.
	HostBridgeID = pcie.MakeID(0, 0, 0)
	// TVMID is the trusted VM's requester identity.
	TVMID = pcie.MakeID(0, 1, 0)
	// SCID is the PCIe Security Controller.
	SCID = pcie.MakeID(1, 0, 0)
	// XPUID is the accelerator.
	XPUID = pcie.MakeID(2, 0, 0)
)

// Config parameterizes platform construction.
type Config struct {
	// XPU selects the device model; zero value defaults to A100.
	XPU xpu.Profile
	// Mode selects vanilla or protected operation.
	Mode Mode
	// Adaptor selects the §5 optimization set (Protected mode only);
	// zero value means fully Optimized.
	Adaptor *adaptor.Options
	// RingEntries sizes the command ring (default 64).
	RingEntries uint64
	// GoldenFirmware is the firmware measurement the PCIe-SC attests
	// the xPU against (§6's software-based attestation). Empty means
	// the profile's shipped firmware — i.e. a genuine device. Tests
	// set it to a different value to model a flashed/compromised xPU.
	GoldenFirmware string
	// Observe enables the observability layer: a metrics registry and a
	// span tracer wired through every pipeline stage (filter, crypto,
	// adaptor, driver, device). Off (the default) every instrumentation
	// site sees nil handles and costs nothing.
	Observe bool
	// Telemetry attaches the live telemetry plane (HTTP scrape
	// endpoints, tamper-evident audit log, rolling SLO monitors) on
	// top of the observability layer; non-nil implies Observe.
	Telemetry *telemetry.Options
	// LLM configures the continuous-batching inference engine behind
	// Tenant.OpenSession (WithLLMEngine / WithKVBudget). Consumed by
	// NewMultiPlatform; zero fields keep engine defaults.
	LLM llm.EngineConfig
}

// HostBridge terminates device-initiated traffic on the host bus: DMA
// into guest memory (IOMMU-checked) and MSI interrupt writes. MSI
// delivery is shared across every tenant of a MultiPlatform, so the
// interrupt log is mutex-guarded.
type HostBridge struct {
	id    pcie.ID
	space *mem.Space
	iommu *mem.IOMMU

	// bus is the segment the bridge terminates; when it has never been
	// tapped, MRd completion payloads are carved from the shared arena
	// (the terminal consumer returns them after copying) instead of
	// freshly allocated per read.
	bus *pcie.Bus

	msiMu sync.Mutex
	msi   []uint32
}

// DeviceID implements pcie.Endpoint.
func (h *HostBridge) DeviceID() pcie.ID { return h.id }

// Handle implements pcie.Endpoint.
func (h *HostBridge) Handle(p *pcie.Packet) *pcie.Packet {
	if p.Address >= msiBase && p.Address < msiBase+msiSize {
		if p.Kind == pcie.MWr && len(p.Payload) >= 4 {
			h.msiMu.Lock()
			h.msi = append(h.msi, binary.LittleEndian.Uint32(p.Payload))
			h.msiMu.Unlock()
		}
		return nil
	}
	switch p.Kind {
	case pcie.MRd:
		if !h.iommu.Check(p.Requester, p.Address, int64(p.Length), false) {
			return pcie.NewCompletion(p, h.id, pcie.CplCA, nil)
		}
		if h.bus != nil && h.bus.Untapped() {
			// Pooled fast path: no tap has ever seen this bus, so the
			// requester is provably the payload's last holder and will
			// return it to the arena after copying (device dmaReadInto,
			// SC span fetch). A requester that doesn't participate just
			// leaks the buffer to the GC — today's behavior.
			data := arena.Get(int(p.Length))
			if err := h.space.ReadInto(p.Address, data); err != nil {
				arena.Put(data)
				return pcie.NewCompletion(p, h.id, pcie.CplUR, nil)
			}
			return pcie.NewCompletionOwned(p, h.id, pcie.CplSuccess, data)
		}
		data, err := h.space.Read(p.Address, int64(p.Length))
		if err != nil {
			return pcie.NewCompletion(p, h.id, pcie.CplUR, nil)
		}
		// space.Read returned a fresh copy; transfer it instead of
		// copying a second time.
		return pcie.NewCompletionOwned(p, h.id, pcie.CplSuccess, data)
	case pcie.MWr:
		if !h.iommu.Check(p.Requester, p.Address, int64(len(p.Payload)), true) {
			return nil // posted write silently dropped, fault recorded
		}
		_ = h.space.Write(p.Address, p.Payload)
		return nil
	}
	return pcie.NewCompletion(p, h.id, pcie.CplUR, nil)
}

// Interrupts reports MSI payloads received so far.
func (h *HostBridge) Interrupts() []uint32 {
	h.msiMu.Lock()
	defer h.msiMu.Unlock()
	return append([]uint32(nil), h.msi...)
}

// Platform is one assembled machine: guest, buses, optional PCIe-SC,
// device, and driver.
type Platform struct {
	Mode   Mode
	Guest  *tvm.Guest
	Host   *pcie.Bus
	Bridge *HostBridge
	IOMMU  *mem.IOMMU

	Internal *pcie.Bus
	Device   *xpu.Device

	SC      *core.Controller
	Adaptor *adaptor.Adaptor
	Driver  *tvm.Driver

	ring    *adaptor.Region // protected-mode ring region
	ringBuf *mem.Buffer     // vanilla-mode ring buffer
	tvmKeys *secmem.KeyStore
	scKeys  *secmem.KeyStore
	trusted bool
	golden  string

	// Blade is the HRoT-Blade populated by SecureBoot (nil until then).
	Blade *hrot.Blade
	// bootRules records the static policy for PCR measurement.
	bootRules []core.Rule

	// Obs is the observability hub (nil unless Config.Observe).
	Obs *obsv.Hub
	// Tel is the live telemetry plane (nil unless Config.Telemetry).
	Tel *telemetry.Plane
}

// Telemetry returns the live telemetry plane, nil when not attached.
func (p *Platform) Telemetry() *telemetry.Plane { return p.Tel }

// Observability returns the platform's hub, nil when observability is
// off. All obsv types no-op on nil, so callers may chain freely:
// plat.Observability().T().Spans() is safe either way.
func (p *Platform) Observability() *obsv.Hub { return p.Obs }

// WriteTimeline exports every recorded span as Chrome trace-event JSON
// (load in chrome://tracing or Perfetto). An error is returned when
// observability is off.
func (p *Platform) WriteTimeline(w io.Writer) error {
	if p.Obs == nil {
		return ErrObserveOff
	}
	return p.Obs.Tracer.WriteChromeTrace(w)
}

// MetricsSnapshot returns a point-in-time copy of every metric. The
// zero Snapshot is returned when observability is off.
func (p *Platform) MetricsSnapshot() obsv.Snapshot { return p.Obs.Reg().Snapshot() }

// NewPlatform assembles and boots a platform.
//
// Deprecated: prefer New with functional options (WithXPU, WithMode,
// WithObserve, ...), which reads better and leaves Config extensible.
// NewPlatform remains fully supported for struct-literal callers.
func NewPlatform(cfg Config) (*Platform, error) {
	if cfg.XPU.Name == "" {
		cfg.XPU = xpu.A100
	}
	if cfg.RingEntries == 0 {
		cfg.RingEntries = 64
	}
	opts := adaptor.Optimized()
	if cfg.Adaptor != nil {
		opts = *cfg.Adaptor
	}

	guest, err := tvm.NewGuest(TVMID, privateBase, privateSize, sharedBase, sharedSize)
	if err != nil {
		return nil, err
	}
	p := &Platform{
		Mode:   cfg.Mode,
		Guest:  guest,
		Host:   pcie.NewBus("host"),
		IOMMU:  mem.NewIOMMU(),
		golden: cfg.GoldenFirmware,
	}
	if cfg.Observe || cfg.Telemetry != nil {
		p.Obs = obsv.NewHub()
	}
	p.Bridge = &HostBridge{id: HostBridgeID, space: guest.Space, iommu: p.IOMMU, bus: p.Host}
	p.Host.Attach(p.Bridge)
	for _, r := range []pcie.Region{
		{Base: privateBase, Size: privateSize, Name: "ram/private"},
		{Base: sharedBase, Size: sharedSize, Name: "ram/shared"},
		{Base: msiBase, Size: msiSize, Name: "msi"},
	} {
		if err := p.Host.Claim(HostBridgeID, r); err != nil {
			return nil, err
		}
	}

	p.Device = xpu.NewDevice(cfg.XPU, XPUID, xpuBARBase, 1<<20)
	if p.Obs != nil {
		p.Device.SetObserver(p.Obs)
	}

	if cfg.Mode == Vanilla {
		err = p.assembleVanilla(cfg)
	} else {
		err = p.assembleProtected(cfg, opts)
	}
	if err != nil {
		return p, err
	}
	if cfg.Telemetry != nil {
		if p.Tel, err = telemetry.Attach(p.Obs, *cfg.Telemetry); err != nil {
			return p, err
		}
	}
	return p, nil
}

func (p *Platform) assembleVanilla(cfg Config) error {
	p.Host.Attach(p.Device)
	if err := p.Host.Claim(XPUID, p.Device.BAR0()); err != nil {
		return err
	}
	p.Device.SetUpstream(func(pkt *pcie.Packet) *pcie.Packet { return p.Host.Route(pkt) })
	// Completion payloads come from the host bridge's arena pool while
	// the bus stays untapped; the device returns them after copying. MWr
	// staging keeps the slab — the bridge copies posted writes but does
	// not recycle them.
	p.Device.SetPayloadRecycling(p.Host.Untapped, nil)
	// Vanilla DMA policy: the device may reach the shared (DMA-able)
	// region, as a conventional driver would map it.
	p.IOMMU.Map(XPUID, sharedBase, sharedSize, mem.PermRead|mem.PermWrite)

	ring, err := p.Guest.Space.Alloc(tvm.SharedRegion, "cmdring", int64(cfg.RingEntries)*xpu.CmdSize)
	if err != nil {
		return err
	}
	p.ringBuf = ring
	port := &tvm.DirectPort{ID: TVMID, Bus: p.Host, BAR0: xpuBARBase}
	p.Driver, err = tvm.NewDriver(port, p.Guest.Space, ring, cfg.RingEntries)
	if err != nil {
		return err
	}
	if p.Obs != nil {
		p.Driver.SetObserver(p.Obs)
	}
	return p.Driver.ConfigureMSI(msiBase, 0x41)
}

func (p *Platform) assembleProtected(cfg Config, opts adaptor.Options) error {
	p.Internal = pcie.NewBus("internal")
	p.Internal.Attach(p.Device)
	if err := p.Internal.Claim(XPUID, p.Device.BAR0()); err != nil {
		return err
	}

	p.scKeys = secmem.NewKeyStore()
	p.tvmKeys = secmem.NewKeyStore()
	p.SC = core.NewController(SCID, pcie.Region{Base: scBARBase, Size: core.SCBarSize, Name: "pcie-sc"}, p.scKeys)
	if err := p.SC.AttachHostBus(p.Host, p.Device.BAR0()); err != nil {
		return err
	}
	p.SC.AttachInternalBus(p.Internal, XPUID)
	p.SC.SetAuthorizedTVM(TVMID)
	// Batched completion reaping: after forwarding a guarded doorbell the
	// SC reads the device's command head once and DMA-writes it into the
	// submission ring header, so the driver's completion poll becomes a
	// host-memory read.
	p.SC.ConfigureCompletionReap(xpu.RegDoorbell, xpu.RegCmdHead)
	// The SC's internal port claims every host window on the internal
	// bus, so all device-initiated traffic (DMA, MSI) routes through the
	// filter — and is observable on the internal segment like real wire
	// traffic.
	p.Internal.Attach(p.SC.InternalPort())
	for _, r := range []pcie.Region{
		{Base: privateBase, Size: privateSize, Name: "up/private"},
		{Base: sharedBase, Size: sharedSize, Name: "up/shared"},
		{Base: msiBase, Size: msiSize, Name: "up/msi"},
	} {
		if err := p.Internal.Claim(SCID, r); err != nil {
			return err
		}
	}
	p.SC.SetTeardownHook(func() {
		// Environment guard: clean the device on session teardown.
		plan := p.SC.Guard().CleanPlan(p.Device.Profile().SupportsSoftReset, xpu.RegReset, xpu.ResetEnv, xpu.ResetCold)
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, plan.Val)
		p.Internal.Route(pcie.NewMemWrite(SCID, xpuBARBase+plan.Reg, buf))
	})
	p.Device.SetUpstream(func(pkt *pcie.Packet) *pcie.Packet { return p.Internal.Route(pkt) })
	// Close the payload-recycling loops on the internal segment: the
	// device returns the SC's H2D plaintext completions to the arena
	// after copying, stages D2H MWr payloads from the arena for the SC's
	// write-span pipeline to return after sealing, and the SC recycles
	// its own bounce-buffer fetches and ciphertext staging likewise. All
	// gates re-check Bus.Untapped per packet, so fault-injection taps
	// installed mid-run degrade to today's allocate-and-forget behavior.
	p.Device.SetPayloadRecycling(p.Internal.Untapped, p.Internal.Untapped)
	p.SC.EnableDatapathRecycling()

	// The SC (not the device) masters the host bus; only the shared
	// bounce window is mapped for it. The TVM-private region stays
	// unmapped for every device — the paper's IOMMU assumption.
	p.IOMMU.Map(SCID, sharedBase, sharedSize, mem.PermRead|mem.PermWrite)

	p.installBootRules()

	p.Adaptor = adaptor.New(TVMID, p.Host, p.Guest.Space, p.tvmKeys, scBARBase, xpuBARBase, opts)
	if p.Obs != nil {
		p.SC.SetObserver(p.Obs)
		p.Adaptor.SetObserver(p.Obs)
	}
	return nil
}

// installBootRules loads the static platform policy measured at secure
// boot: the L1 screen for the TVM and the xPU, and the L2
// classification of Figure 5 adapted to the platform address map.
func (p *Platform) installBootRules() {
	f := p.SC.Filter()
	for _, r := range core.L1Screen(1, TVMID) {
		f.InstallL1(r)
		p.recordBootRule(r)
	}
	for _, r := range core.L1Screen(10, XPUID) {
		f.InstallL1(r)
		p.recordBootRule(r)
	}
	bar := p.Device.BAR0()
	l2 := []core.Rule{
		// TVM control writes to the xPU window: Write Protected (A3).
		{ID: 20, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
			Kind: pcie.MWr, Requester: TVMID, AddrLo: bar.Base, AddrHi: bar.End(),
			Action: core.ActionWriteProtect},
		// TVM reads of xPU status: Full Accessible (A4).
		{ID: 21, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
			Kind: pcie.MRd, Requester: TVMID, AddrLo: bar.Base, AddrHi: bar.End(),
			Action: core.ActionPassThrough},
		// xPU DMA into the shared window: protected (descriptor
		// decides A2 vs A3 per region).
		{ID: 22, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
			Kind: pcie.MRd, Requester: XPUID, AddrLo: sharedBase, AddrHi: sharedBase + sharedSize,
			Action: core.ActionWriteReadProtect},
		{ID: 23, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
			Kind: pcie.MWr, Requester: XPUID, AddrLo: sharedBase, AddrHi: sharedBase + sharedSize,
			Action: core.ActionWriteReadProtect},
		// xPU interrupts: Full Accessible (A4).
		{ID: 24, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
			Kind: pcie.MWr, Requester: XPUID, AddrLo: msiBase, AddrHi: msiBase + msiSize,
			Action: core.ActionPassThrough},
	}
	for _, r := range l2 {
		f.InstallL2(r)
		p.recordBootRule(r)
	}
}

// EstablishTrust provisions the session's symmetric streams on both
// ends. In deployment this material comes out of the Figure 6 remote
// attestation + key exchange (see internal/attest and the attestation
// example); the platform helper runs the same installation step with
// locally generated keys. Before provisioning anything, the PCIe-SC
// software-attests the xPU firmware (§6): a device answering the
// challenge wrongly never receives keys.
func (p *Platform) EstablishTrust() error {
	if p.Mode != Protected {
		return nil
	}
	sp := p.Obs.T().Begin(obsv.TrackTask, "establish_trust", obsv.Str("xpu", p.Device.Profile().Name))
	defer sp.End()
	var nonceBuf [8]byte
	if _, err := rand.Read(nonceBuf[:]); err != nil {
		return err
	}
	nonce := binary.LittleEndian.Uint64(nonceBuf[:])
	golden := p.golden
	if golden == "" {
		golden = p.Device.Profile().FirmwareVersion
	}
	expected := xpu.AttestDigest(golden, nonce)
	if !p.SC.AttestDevice(nonce, expected, xpu.RegAttestNonce, xpu.RegAttestResp) {
		return fmt.Errorf("%w; refusing to provision keys", ErrAttestFailed)
	}
	p.Obs.Eventf(obsv.EvAttest, "", "xpu=%s", p.Device.Profile().Name)
	for _, stream := range []string{core.StreamH2D, core.StreamD2H, core.StreamConfig, core.StreamMMIO} {
		key, nonce := secmem.FreshKey(), secmem.FreshNonce()
		if err := p.scKeys.Install(stream, key, nonce); err != nil {
			return err
		}
		if err := p.tvmKeys.Install(stream, key, nonce); err != nil {
			return err
		}
		if stream != core.StreamMMIO { // MMIO uses raw MAC keys, not a stream
			if err := p.SC.Params().Activate(stream); err != nil {
				return err
			}
		}
	}
	if err := p.Adaptor.HWInit(); err != nil {
		return err
	}
	p.trusted = true
	return p.setupProtectedDriver()
}

func (p *Platform) setupProtectedDriver() error {
	const ringEntries = 64
	ring, err := p.Adaptor.StageVerified("cmdring", ringEntries*xpu.CmdSize, xpu.CmdSize)
	if err != nil {
		return err
	}
	p.ring = ring
	port := &guardedPort{a: p.Adaptor}
	p.Driver, err = tvm.NewDriver(port, p.Guest.Space, ring.Buf, ringEntries)
	if err != nil {
		return err
	}
	if p.Obs != nil {
		p.Driver.SetObserver(p.Obs)
	}
	p.Driver.SetPreDoorbell(func(chunks []uint32) error {
		return p.Adaptor.SyncVerified(p.ring, chunks)
	})
	return p.Driver.ConfigureMSI(msiBase, 0x41)
}

// guardedPort carries driver MMIO through the Adaptor's A3 protocol.
// Command-head polls route through the reaped completion word so the
// steady-state task loop costs zero MMIO reads.
type guardedPort struct{ a *adaptor.Adaptor }

func (g *guardedPort) WriteReg(reg uint64, v uint64) error { return g.a.GuardedWrite(reg, v) }

func (g *guardedPort) ReadReg(reg uint64) (uint64, error) {
	if reg == xpu.RegCmdHead {
		return g.a.CompletionHead(reg)
	}
	return g.a.DeviceRead(reg)
}

// Close tears the session down: keys destroyed, device cleaned, the
// telemetry server (if any) stopped.
func (p *Platform) Close() {
	if p.Mode == Protected && p.Adaptor != nil && p.trusted {
		p.Adaptor.Teardown()
		p.trusted = false
	}
	if p.Tel != nil {
		p.Tel.Close()
		p.Tel = nil
	}
}
