package ccai

// Tests for the §9 extension: one PCIe-SC chassis slicing between
// multiple (TVM, xPU) pairs, with per-tenant keys, policies, regions
// and full cross-tenant isolation.

import (
	"bytes"
	"testing"

	"ccai/internal/attack"
	"ccai/internal/core"
	"ccai/internal/pcie"
	"ccai/internal/xpu"
)

func twoTenants(t *testing.T) *MultiPlatform {
	t.Helper()
	mp, err := NewMultiPlatform([]xpu.Profile{xpu.A100, xpu.N150d})
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range mp.Tenants {
		if err := tenant.EstablishTrust(); err != nil {
			t.Fatalf("tenant %d: %v", tenant.Index, err)
		}
	}
	t.Cleanup(mp.Close)
	return mp
}

func TestMultiTenantBothRunTasks(t *testing.T) {
	mp := twoTenants(t)
	inputs := [][]byte{
		[]byte("tenant zero's proprietary embedding batch"),
		[]byte("tenant one's confidential medical prompt"),
	}
	for i, tenant := range mp.Tenants {
		out, err := tenant.RunTask(Task{Input: inputs[i], Kernel: KernelXOR, Param: 0x21})
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
		for j := range inputs[i] {
			if out[j] != inputs[i][j]^0x21 {
				t.Fatalf("tenant %d: byte %d wrong", i, j)
			}
		}
	}
	if mp.Mux.Units() != 2 {
		t.Fatalf("units = %d", mp.Mux.Units())
	}
}

func TestMultiTenantInterleavedTasks(t *testing.T) {
	mp := twoTenants(t)
	for round := 0; round < 3; round++ {
		for i, tenant := range mp.Tenants {
			in := bytes.Repeat([]byte{byte(round*2 + i + 1)}, 300)
			out, err := tenant.RunTask(Task{Input: in, Kernel: KernelAdd, Param: 1})
			if err != nil {
				t.Fatalf("round %d tenant %d: %v", round, i, err)
			}
			if out[0] != in[0]+1 {
				t.Fatalf("round %d tenant %d: wrong result", round, i)
			}
		}
	}
}

func TestMultiTenantNoCrossPlaintext(t *testing.T) {
	mp := twoTenants(t)
	snoop := attack.NewSnooper()
	mp.Host.AddTap(snoop)
	secretA := []byte("TENANT-A-SECRET-WEIGHTS-000111222")
	secretB := []byte("TENANT-B-SECRET-INPUTS-3334445556")
	if _, err := mp.Tenants[0].RunTask(Task{Input: secretA, Kernel: KernelAdd, Param: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := mp.Tenants[1].RunTask(Task{Input: secretB, Kernel: KernelAdd, Param: 0}); err != nil {
		t.Fatal(err)
	}
	if snoop.SawPlaintext(secretA) || snoop.SawPlaintext(secretB) {
		t.Fatal("tenant plaintext on the shared host bus")
	}
}

func TestMultiTenantCannotDriveNeighborXPU(t *testing.T) {
	mp := twoTenants(t)
	a, b := mp.Tenants[0], mp.Tenants[1]
	// Tenant A's TVM pokes tenant B's xPU window directly.
	rogue := &attack.RogueRequester{ID: a.TVMID, Bus: mp.Host}
	winB := uint64(xpuBARBase) + tenantStride
	droppedBefore := b.SC.Stats().Filter.Dropped
	rogue.Write(winB+xpu.RegDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	cpl := rogue.Read(winB+xpu.RegStatus, 8)
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatal("tenant A read tenant B's device state")
	}
	if b.SC.Stats().Filter.Dropped <= droppedBefore {
		t.Fatal("unit B's filter did not drop the foreign TVM")
	}
}

func TestMultiTenantCannotTouchNeighborControlBAR(t *testing.T) {
	mp := twoTenants(t)
	a, b := mp.Tenants[0], mp.Tenants[1]
	barB := uint64(scBARBase) + tenantStride
	rejBefore := b.SC.Stats().ConfigRejects
	tearBefore := b.SC.Stats().Teardowns
	mp.Host.Route(pcie.NewMemWrite(a.TVMID, barB+core.RegTeardown, []byte{1, 0, 0, 0, 0, 0, 0, 0}))
	if b.SC.Stats().Teardowns != tearBefore {
		t.Fatal("tenant A tore down tenant B's session")
	}
	if b.SC.Stats().ConfigRejects <= rejBefore {
		t.Fatal("control-BAR rejection not recorded")
	}
}

func TestMultiTenantDeviceCannotReachNeighborBounce(t *testing.T) {
	mp := twoTenants(t)
	a, b := mp.Tenants[0], mp.Tenants[1]
	// Stage data for tenant B, then have tenant A's *device* try to
	// read it (a compromised accelerator attacking a neighbor).
	region, err := b.Adaptor.StageH2D("b-weights", []byte("tenant B staged data, 32 bytes!!"))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Adaptor.ReleaseRegion(region)
	// A's device DMA goes through A's internal bus -> A's SC unit,
	// which has no region registered for B's address and whose IOMMU
	// mapping doesn't cover B's window.
	cpl := a.SC.HandleFromDevice(pcie.NewMemRead(a.XPUID, region.Buf.Base(), 32, 0))
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatal("tenant A's device read tenant B's bounce buffer")
	}
}

func TestMultiTenantKeysAreIndependent(t *testing.T) {
	mp := twoTenants(t)
	a, b := mp.Tenants[0], mp.Tenants[1]
	keyA, _, err := a.SC.Keys().Material(core.StreamH2D)
	if err != nil {
		t.Fatal(err)
	}
	keyB, err2 := func() ([]byte, error) {
		k, _, err := b.SC.Keys().Material(core.StreamH2D)
		return k, err
	}()
	if err2 != nil {
		t.Fatal(err2)
	}
	if bytes.Equal(keyA, keyB) {
		t.Fatal("tenants share stream keys")
	}
}

func TestMultiTenantTeardownIsPerTenant(t *testing.T) {
	mp := twoTenants(t)
	a, b := mp.Tenants[0], mp.Tenants[1]
	if _, err := a.RunTask(Task{Input: []byte("residue"), Kernel: KernelAdd, Param: 0}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if a.Device.MemResidue() {
		t.Fatal("tenant A device not wiped")
	}
	// Tenant B keeps running.
	out, err := b.RunTask(Task{Input: []byte("still alive"), Kernel: KernelAdd, Param: 0})
	if err != nil || string(out) != "still alive" {
		t.Fatalf("tenant B broken after A's teardown: %v", err)
	}
	// Tenant A can't run anymore.
	if _, err := a.RunTask(Task{Input: []byte("x"), Kernel: KernelAdd, Param: 0}); err == nil {
		t.Fatal("closed tenant still runs tasks")
	}
}

func TestMuxRejectsDuplicateSlices(t *testing.T) {
	mux := core.NewMux(SCID)
	keys1 := core.NewController(pcie.MakeID(1, 0, 0), pcie.Region{Base: 0x1000, Size: 0x1000}, nil)
	_ = keys1
	mk := func(fn uint8) *core.MuxUnit {
		c := core.NewController(pcie.MakeID(1, 0, fn), pcie.Region{Base: 0x1000, Size: 0x1000}, nil)
		return &core.MuxUnit{Ctrl: c, XPU: pcie.MakeID(2, 0, 0), TVM: pcie.MakeID(0, 1, 0)}
	}
	if err := mux.AddUnit(mk(0)); err != nil {
		t.Fatal(err)
	}
	if err := mux.AddUnit(mk(1)); err == nil {
		t.Fatal("duplicate xPU slice accepted")
	}
	if err := mux.AddUnit(&core.MuxUnit{}); err == nil {
		t.Fatal("unit without controller accepted")
	}
}

func TestMultiPlatformValidatesTenantCount(t *testing.T) {
	if _, err := NewMultiPlatform(nil); err == nil {
		t.Fatal("zero tenants accepted")
	}
	profiles := make([]xpu.Profile, 9)
	for i := range profiles {
		profiles[i] = xpu.A100
	}
	if _, err := NewMultiPlatform(profiles); err == nil {
		t.Fatal("nine tenants accepted")
	}
}

func TestMultiTenantFiveDevices(t *testing.T) {
	mp, err := NewMultiPlatform(xpu.Fleet())
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	for _, tenant := range mp.Tenants {
		if err := tenant.EstablishTrust(); err != nil {
			t.Fatalf("tenant %d (%s): %v", tenant.Index, tenant.Device.Profile().Name, err)
		}
		out, err := tenant.RunTask(Task{Input: []byte("fleet slice"), Kernel: KernelAdd, Param: 2})
		if err != nil {
			t.Fatalf("tenant %d (%s): %v", tenant.Index, tenant.Device.Profile().Name, err)
		}
		if out[0] != 'f'+2 {
			t.Fatalf("tenant %d: wrong result", tenant.Index)
		}
	}
}

// TestMultiTenantCrossReplayRejected captures tenant A's encrypted
// traffic and replays it into tenant B's windows: B's unit holds
// different keys and regions, so nothing decrypts and nothing installs.
func TestMultiTenantCrossReplayRejected(t *testing.T) {
	mp := twoTenants(t)
	a, b := mp.Tenants[0], mp.Tenants[1]

	rec := &attack.Recorder{Match: func(pk *pcie.Packet) bool {
		return pk.Kind == pcie.MWr && pk.Requester == a.TVMID
	}}
	mp.Host.AddTap(rec)
	if _, err := a.RunTask(Task{Input: []byte("tenant A job"), Kernel: KernelAdd, Param: 0}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Captured) == 0 {
		t.Fatal("nothing captured")
	}
	// Replay A's packets shifted into B's windows.
	decBefore := b.SC.Stats().DecryptedChunks
	rulesL1, rulesL2 := b.SC.Filter().RuleCount()
	for _, pkt := range rec.Captured {
		q := pkt.Clone()
		q.Address += tenantStride // A's window -> B's window
		mp.Host.Route(q)
	}
	if b.SC.Stats().DecryptedChunks != decBefore {
		t.Fatal("tenant B decrypted replayed foreign chunks")
	}
	if l1, l2 := b.SC.Filter().RuleCount(); l1 != rulesL1 || l2 != rulesL2 {
		t.Fatal("replayed config installed rules on tenant B")
	}
	// B keeps working.
	if _, err := b.RunTask(Task{Input: []byte("tenant B fine"), Kernel: KernelAdd, Param: 0}); err != nil {
		t.Fatalf("tenant B disturbed by cross replay: %v", err)
	}
}

// TestMultiTenantSnoopIsolation verifies each tenant's secrets stay off
// the wire even while the other tenant's SC unit is active on the same
// physical host bus.
func TestMultiTenantSnoopIsolation(t *testing.T) {
	mp := twoTenants(t)
	snoop := attack.NewSnooper()
	mp.Host.AddTap(snoop)
	secrets := [][]byte{
		[]byte("SECRET-A-0123456789abcdef-block"),
		[]byte("SECRET-B-fedcba9876543210-block"),
	}
	// Interleave the two tenants' work.
	for round := 0; round < 2; round++ {
		for i, tenant := range mp.Tenants {
			if _, err := tenant.RunTask(Task{Input: secrets[i], Kernel: KernelAdd, Param: 0}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, s := range secrets {
		if snoop.SawPlaintext(s) {
			t.Fatalf("tenant %d secret visible on the shared bus", i)
		}
	}
}
