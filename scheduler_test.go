package ccai

// The serving-scheduler semantics table (DESIGN.md §11): admission
// validation, cancel-before/while-queued, deadline expiry in the queue,
// fail-fast backpressure, weighted fairness under a two-tenant flood,
// drain-with-inflight and shutdown — each cell crossed with two fault-
// matrix seeds driving a SchedStall injector, because a mid-queue stall
// must be invisible to every one of these contracts. The scheduler's own
// fault classes (SchedStall, CancelRace) get their replayed matrix in
// TestSchedulerFaultMatrix, and TestSchedulerCancellationIntegrity is
// the acceptance gate: a seeded storm of cancellations must never
// poison a tenant's stream state.
//
// Quickstart: go test -race -run TestScheduler -v

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccai/internal/fault"
	"ccai/internal/obsv"
	"ccai/internal/xpu"
)

// schedTask builds a small XOR task whose output is byte-verifiable.
func schedTask(fill byte, n int) Task {
	return Task{Input: bytes.Repeat([]byte{fill}, n), Kernel: KernelXOR, Param: 0x5a}
}

func checkXOR(t *testing.T, in, out []byte) {
	t.Helper()
	if len(out) != len(in) {
		t.Fatalf("output %d bytes, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i]^0x5a {
			t.Fatalf("output byte %d corrupted", i)
		}
	}
}

// mustResult waits for a handle with a hang guard.
func mustResult(t *testing.T, h *Handle) ([]byte, error) {
	t.Helper()
	select {
	case <-h.Done():
		return h.Result()
	case <-time.After(10 * time.Second):
		t.Fatal("handle never completed")
		return nil, nil
	}
}

// newTestScheduler builds a scheduler with a SchedStall injector seeded
// from the fault matrix and a bounded-shutdown cleanup, so a failing
// cell can never hang the suite on an in-flight gate.
func newTestScheduler(t *testing.T, mp *MultiPlatform, cfg SchedulerConfig, seed uint64) *Scheduler {
	t.Helper()
	s, err := mp.NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultHook(fault.NewInjector(matrixEvent(fault.SchedStall, seed)).SchedFault)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// TestSchedulerSemanticsTable is the scenario × seed grid described in
// the file header. Every scenario gets a fresh two-tenant chassis.
func TestSchedulerSemanticsTable(t *testing.T) {
	cells := []struct {
		name string
		run  func(t *testing.T, mp *MultiPlatform, seed uint64)
	}{
		{"cancel_before_admission", schedCellCancelBeforeAdmission},
		{"cancel_while_queued", schedCellCancelWhileQueued},
		{"deadline_while_queued", schedCellDeadlineWhileQueued},
		{"queue_full_backpressure", schedCellQueueFull},
		{"weighted_fairness_flood", schedCellWeightedFairness},
		{"drain_with_inflight", schedCellDrain},
		{"shutdown_cancels_queued", schedCellShutdown},
	}
	for _, c := range cells {
		for _, seed := range matrixSeeds[:2] {
			c, seed := c, seed
			t.Run(fmt.Sprintf("%s/seed=%#x", c.name, seed), func(t *testing.T) {
				c.run(t, servingPlatform(t, 2), seed)
			})
		}
	}
}

// A context that is already dead never reaches the queue: Submit
// rejects it with the context's own error, and the scheduler keeps
// serving afterwards.
func schedCellCancelBeforeAdmission(t *testing.T, mp *MultiPlatform, seed uint64) {
	s := newTestScheduler(t, mp, SchedulerConfig{}, seed)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, TenantTask{Tenant: 0, Task: schedTask(1, 64)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled submit: err = %v, want context.Canceled", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer dcancel()
	if _, err := s.Submit(dctx, TenantTask{Tenant: 0, Task: schedTask(2, 64)}); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired-deadline submit: err = %v, want ErrDeadlineExceeded", err)
	}
	// Validation rejections stay typed too.
	if _, err := s.Submit(context.Background(), TenantTask{Tenant: 9, Task: schedTask(3, 64)}); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("bad tenant: err = %v, want ErrNoTenant", err)
	}
	if _, err := s.Submit(context.Background(), TenantTask{Tenant: 0}); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("empty input: err = %v, want ErrEmptyInput", err)
	}

	task := schedTask(4, 128)
	h, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	out, err := mustResult(t, h)
	if err != nil {
		t.Fatal(err)
	}
	checkXOR(t, task.Input, out)
}

// A request canceled while queued completes with context.Canceled and
// provably never occupies an execution slot.
func schedCellCancelWhileQueued(t *testing.T, mp *MultiPlatform, seed uint64) {
	s := newTestScheduler(t, mp, SchedulerConfig{Slots: 1}, seed)
	entered := make(chan struct{})
	var enteredOnce sync.Once
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	t.Cleanup(releaseOnce)
	var gateHits atomic.Int32
	s.execGate = func(int) {
		gateHits.Add(1)
		enteredOnce.Do(func() { close(entered) })
		<-release
	}

	task1 := schedTask(1, 128)
	h1, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task1})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // h1 holds the only slot

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	h2, err := s.Submit(ctx2, TenantTask{Tenant: 0, Task: schedTask(2, 128)})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
	cancel2()
	out2, err2 := mustResult(t, h2)
	if !errors.Is(err2, context.Canceled) {
		t.Fatalf("queued-cancel err = %v, want context.Canceled", err2)
	}
	if out2 != nil {
		t.Fatalf("canceled request returned %d bytes of output", len(out2))
	}
	if h2.QueueWait() != 0 {
		t.Fatal("canceled request reports a dispatch: it reached a slot")
	}

	releaseOnce()
	out1, err1 := mustResult(t, h1)
	if err1 != nil {
		t.Fatal(err1)
	}
	checkXOR(t, task1.Input, out1)
	if got := gateHits.Load(); got != 1 {
		t.Fatalf("execution slots used = %d, want 1 — the canceled request ran", got)
	}
}

// A deadline that expires in the queue behaves exactly like a cancel:
// ErrDeadlineExceeded, no slot ever occupied.
func schedCellDeadlineWhileQueued(t *testing.T, mp *MultiPlatform, seed uint64) {
	s := newTestScheduler(t, mp, SchedulerConfig{Slots: 1}, seed)
	entered := make(chan struct{})
	var enteredOnce sync.Once
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	t.Cleanup(releaseOnce)
	s.execGate = func(int) {
		enteredOnce.Do(func() { close(entered) })
		<-release
	}

	task1 := schedTask(1, 128)
	h1, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task1})
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	h2, err := s.Submit(ctx2, TenantTask{Tenant: 0, Task: schedTask(2, 128)})
	if err != nil {
		t.Fatal(err)
	}
	_, err2 := mustResult(t, h2)
	if !errors.Is(err2, ErrDeadlineExceeded) {
		t.Fatalf("queued-deadline err = %v, want ErrDeadlineExceeded", err2)
	}
	if h2.QueueWait() != 0 {
		t.Fatal("deadline-expired request reports a dispatch: it reached a slot")
	}

	releaseOnce()
	out1, err1 := mustResult(t, h1)
	if err1 != nil {
		t.Fatal(err1)
	}
	checkXOR(t, task1.Input, out1)
}

// Backpressure is fail-fast and per-tenant: a full queue rejects with
// ErrQueueFull immediately, a neighbor's queue is unaffected, and
// capacity frees as soon as the queue drains.
func schedCellQueueFull(t *testing.T, mp *MultiPlatform, seed uint64) {
	s := newTestScheduler(t, mp, SchedulerConfig{Slots: 1, QueueDepth: 1}, seed)
	entered := make(chan struct{})
	var enteredOnce sync.Once
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	t.Cleanup(releaseOnce)
	s.execGate = func(int) {
		enteredOnce.Do(func() { close(entered) })
		<-release
	}

	task := schedTask(1, 128)
	h1, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // h1 dispatched; tenant 0's queue is empty again

	h2, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: err = %v, want ErrQueueFull", err)
	}
	// The neighbor's bounded queue is its own.
	h4, err := s.Submit(context.Background(), TenantTask{Tenant: 1, Task: task})
	if err != nil {
		t.Fatalf("neighbor submit rejected by tenant 0's backpressure: %v", err)
	}

	releaseOnce()
	for _, h := range []*Handle{h1, h2, h4} {
		out, err := mustResult(t, h)
		if err != nil {
			t.Fatal(err)
		}
		checkXOR(t, task.Input, out)
	}
	// Capacity freed: admission works again.
	h5, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	out, err := mustResult(t, h5)
	if err != nil {
		t.Fatal(err)
	}
	checkXOR(t, task.Input, out)
}

// Two tenants flood a single execution slot with equal-cost tasks at
// weights 1:3. Over the window where both stay backlogged, the heavy
// tenant must get roughly 3× the dispatches and the light tenant must
// never starve.
func schedCellWeightedFairness(t *testing.T, mp *MultiPlatform, seed uint64) {
	const per = 40
	s := newTestScheduler(t, mp, SchedulerConfig{
		Slots: 1, QueueDepth: per, Weights: []int{1, 3},
	}, seed)
	var mu sync.Mutex
	var order []int
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	t.Cleanup(releaseOnce)
	s.execGate = func(tenant int) {
		mu.Lock()
		order = append(order, tenant)
		mu.Unlock()
		<-release // holds the slot until the whole flood is queued
	}

	task := schedTask(7, 512)
	var handles []*Handle
	for i := 0; i < per; i++ {
		for tn := 0; tn < 2; tn++ {
			h, err := s.Submit(context.Background(), TenantTask{Tenant: tn, Task: task})
			if err != nil {
				t.Fatalf("flood submit %d/tenant %d: %v", i, tn, err)
			}
			handles = append(handles, h)
		}
	}
	releaseOnce()
	for _, h := range handles {
		out, err := mustResult(t, h)
		if err != nil {
			t.Fatal(err)
		}
		checkXOR(t, task.Input, out)
	}

	mu.Lock()
	window := order[:per] // both tenants still backlogged here
	mu.Unlock()
	var counts [2]int
	for _, tn := range window {
		counts[tn]++
	}
	t.Logf("contention window (first %d dispatches): tenant0=%d tenant1=%d", per, counts[0], counts[1])
	if counts[0] < 4 {
		t.Fatalf("light tenant starved: %d dispatches in a %d-dispatch window", counts[0], per)
	}
	if counts[1] < 2*counts[0] {
		t.Fatalf("weights not honored: tenant1=%d < 2×tenant0=%d", counts[1], counts[0])
	}
}

// Drain stops admission, finishes everything queued and in flight, and
// leaves every result intact.
func schedCellDrain(t *testing.T, mp *MultiPlatform, seed uint64) {
	s := newTestScheduler(t, mp, SchedulerConfig{Slots: 1}, seed)
	entered := make(chan struct{})
	var enteredOnce sync.Once
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	t.Cleanup(releaseOnce)
	s.execGate = func(int) {
		enteredOnce.Do(func() { close(entered) })
		<-release
	}

	task := schedTask(3, 128)
	h1, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	h2, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	h3, err := s.Submit(context.Background(), TenantTask{Tenant: 1, Task: task})
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for atomic.LoadInt32(&s.state) == schedRunning {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task}); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("submit during drain: err = %v, want ErrSchedulerClosed", err)
	}

	releaseOnce()
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, h := range []*Handle{h1, h2, h3} {
		out, err := mustResult(t, h)
		if err != nil {
			t.Fatal(err)
		}
		checkXOR(t, task.Input, out)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain", got)
	}
}

// Shutdown cancels the queue (ErrSchedulerClosed) but still drains
// in-flight work to a correct result.
func schedCellShutdown(t *testing.T, mp *MultiPlatform, seed uint64) {
	s := newTestScheduler(t, mp, SchedulerConfig{Slots: 1}, seed)
	entered := make(chan struct{})
	var enteredOnce sync.Once
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	t.Cleanup(releaseOnce)
	s.execGate = func(int) {
		enteredOnce.Do(func() { close(entered) })
		<-release
	}

	task := schedTask(5, 128)
	h1, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	h2, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task})
	if err != nil {
		t.Fatal(err)
	}

	stopped := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		stopped <- s.Shutdown(ctx)
	}()
	// The queued request settles immediately, before in-flight drains.
	_, err2 := mustResult(t, h2)
	if !errors.Is(err2, ErrSchedulerClosed) {
		t.Fatalf("queued request at shutdown: err = %v, want ErrSchedulerClosed", err2)
	}

	releaseOnce()
	if err := <-stopped; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	out1, err1 := mustResult(t, h1)
	if err1 != nil {
		t.Fatalf("in-flight request at shutdown: %v", err1)
	}
	checkXOR(t, task.Input, out1)
}

// runSchedMatrixCell drives one scheduler fault class with one seed on
// a single-tenant chassis (one flow keeps the claim order — and thus
// the fault's opportunity sequence — fully deterministic), checks the
// class's contract, probes that the tenant's stream state survived, and
// returns the cell's outcome signature for the determinism check.
func runSchedMatrixCell(t *testing.T, class fault.Class, seed uint64) (string, uint64) {
	t.Helper()
	mp := servingPlatform(t, 1)
	s, err := mp.NewScheduler(SchedulerConfig{QueueDepth: 16, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(matrixEvent(class, seed))
	s.SetFaultHook(inj.SchedFault)

	const reqs = 8
	tasks := make([]Task, reqs)
	handles := make([]*Handle, reqs)
	for i := range tasks {
		tasks[i] = schedTask(byte(i+1), 96+i*32)
		handles[i], err = s.Submit(context.Background(), TenantTask{Tenant: 0, Task: tasks[i]})
		if err != nil {
			t.Fatalf("submit %d under %v: %v", i, class, err)
		}
	}
	errBits := 0
	for i, h := range handles {
		out, rerr := mustResult(t, h)
		if rerr == nil {
			checkXOR(t, tasks[i].Input, out)
			continue
		}
		errBits |= 1 << i
		if class == fault.SchedStall {
			t.Fatalf("request %d failed under %v (stalls must be transparent): %v", i, class, rerr)
		}
		if !errors.Is(rerr, context.Canceled) {
			t.Fatalf("request %d under %v: err = %v, want context.Canceled", i, class, rerr)
		}
	}
	if class == fault.CancelRace && errBits == 0 && inj.TotalFired() > 0 {
		t.Fatalf("%v fired %d times but no request was canceled", class, inj.TotalFired())
	}

	// The episode is over: the scheduler and the tenant's stream state
	// must serve a fresh request byte-perfectly.
	s.SetFaultHook(nil)
	probe := schedTask(0x7e, 256)
	hp, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: probe})
	if err != nil {
		t.Fatalf("post-episode probe rejected under %v: %v", class, err)
	}
	out, perr := mustResult(t, hp)
	if perr != nil {
		t.Fatalf("post-episode probe failed under %v — state poisoned: %v", class, perr)
	}
	checkXOR(t, probe.Input, out)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under %v: %v", class, err)
	}
	return fmt.Sprintf("errs=%#x fired=%d log=%v", errBits, inj.TotalFired(), inj.Log()), inj.TotalFired()
}

// TestSchedulerFaultMatrix crosses the scheduler-level fault classes
// with the matrix seeds, each cell replayed twice for determinism —
// the scheduler's wing of TestFaultMatrix.
func TestSchedulerFaultMatrix(t *testing.T) {
	firedByClass := make(map[fault.Class]uint64)
	for _, class := range []fault.Class{fault.SchedStall, fault.CancelRace} {
		for _, seed := range matrixSeeds {
			class, seed := class, seed
			t.Run(fmt.Sprintf("%v/seed=%#x", class, seed), func(t *testing.T) {
				sig1, fired := runSchedMatrixCell(t, class, seed)
				sig2, _ := runSchedMatrixCell(t, class, seed)
				if sig1 != sig2 {
					t.Fatalf("cell is nondeterministic:\n run1: %s\n run2: %s", sig1, sig2)
				}
				firedByClass[class] += fired
			})
		}
	}
	for class, n := range firedByClass {
		t.Logf("class %v fired %d times across seeds", class, n)
		if n == 0 {
			t.Fatalf("class %v never fired; its matrix rows are vacuous", class)
		}
	}
}

// TestSchedulerCancellationIntegrity is the acceptance gate from the
// issue: N requests with a seeded random subset canceled mid-flight
// (explicit cancels and short deadlines, landing before and during
// execution). Survivors must be byte-for-byte correct, every canceled
// request must fail with context.Canceled or ErrDeadlineExceeded, and
// afterwards both tenants must still serve perfectly — cancellation
// never corrupts IV or tag state.
func TestSchedulerCancellationIntegrity(t *testing.T) {
	mp := servingPlatform(t, 2)
	s, err := mp.NewScheduler(SchedulerConfig{QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	// Slow each execution slightly so queues build and short deadlines
	// genuinely expire mid-flight.
	s.execGate = func(int) { time.Sleep(500 * time.Microsecond) }

	const n = 60
	rng := rand.New(rand.NewSource(int64(matrixSeeds[0])))
	type req struct {
		task      Task
		h         *Handle
		cancelled bool // a cancel or deadline was armed
	}
	var reqs []req
	var cancels []context.CancelFunc
	for i := 0; i < n; i++ {
		task := schedTask(byte(i%251+1), 256+rng.Intn(2048))
		ctx := context.Background()
		armed := false
		switch rng.Intn(3) {
		case 1: // explicit cancel at a random moment mid-storm
			cctx, cancel := context.WithCancel(ctx)
			ctx = cctx
			cancels = append(cancels, cancel)
			delay := time.Duration(rng.Intn(4)) * time.Millisecond
			time.AfterFunc(delay, cancel)
			armed = true
		case 2: // short deadline that may expire queued or executing
			dctx, cancel := context.WithTimeout(ctx, time.Duration(1+rng.Intn(4))*time.Millisecond)
			ctx = dctx
			cancels = append(cancels, cancel)
			armed = true
		}
		h, err := s.Submit(ctx, TenantTask{Tenant: i % 2, Task: task})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		reqs = append(reqs, req{task: task, h: h, cancelled: armed})
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	survivors, canceled := 0, 0
	for i, r := range reqs {
		out, err := mustResult(t, r.h)
		if err == nil {
			survivors++
			checkXOR(t, r.task.Input, out)
			continue
		}
		canceled++
		if !r.cancelled {
			t.Fatalf("request %d had no cancel armed but failed: %v", i, err)
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("request %d: err = %v, want context.Canceled or ErrDeadlineExceeded", i, err)
		}
		if out != nil {
			t.Fatalf("request %d canceled but returned %d output bytes", i, len(out))
		}
	}
	t.Logf("storm: %d survivors, %d canceled of %d", survivors, canceled, n)
	if survivors == 0 || canceled == 0 {
		t.Fatalf("storm vacuous: %d survivors, %d canceled — need both populations", survivors, canceled)
	}

	// Post-storm: every tenant's stream state must be pristine.
	s.execGate = nil
	for tn := 0; tn < 2; tn++ {
		probe := schedTask(0x33, 512)
		h, err := s.Submit(context.Background(), TenantTask{Tenant: tn, Task: probe})
		if err != nil {
			t.Fatalf("post-storm probe tenant %d: %v", tn, err)
		}
		out, err := mustResult(t, h)
		if err != nil {
			t.Fatalf("post-storm probe tenant %d failed — stream state poisoned: %v", tn, err)
		}
		checkXOR(t, probe.Input, out)
	}
}

// TestObserveOffNilHubErgonomics pins the documented observe-off
// contract for every public accessor: nil hubs chain safely, snapshots
// are zero, timelines return ErrObserveOff, and the whole serving path
// works without a hub.
func TestObserveOffNilHubErgonomics(t *testing.T) {
	p, err := New(WithXPU(xpu.A100), WithMode(Protected))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Observability() != nil {
		t.Fatal("Observability() non-nil without WithObserve")
	}
	// Chaining through the nil hub is a documented no-op, never a panic.
	sp := p.Observability().T().Begin(obsv.TrackTask, "probe", obsv.Str("k", "v"))
	sp.Attr(obsv.I64("n", 1))
	sp.End()
	p.Observability().T().Instant(obsv.TrackSched, "probe")
	p.Observability().Reg().Counter("probe").Inc()
	p.Observability().Reg().Gauge("probe").Set(7)
	snap := p.MetricsSnapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Hists) != 0 {
		t.Fatalf("observe-off snapshot not zero: %+v", snap)
	}
	if err := p.WriteTimeline(io.Discard); !errors.Is(err, ErrObserveOff) {
		t.Fatalf("WriteTimeline err = %v, want ErrObserveOff", err)
	}
	if err := p.EstablishTrust(); err != nil {
		t.Fatal(err)
	}
	task := schedTask(9, 128)
	out, err := p.RunTask(task)
	if err != nil {
		t.Fatal(err)
	}
	checkXOR(t, task.Input, out)

	mp, err := NewMultiPlatform([]xpu.Profile{xpu.A100})
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	if mp.Observability() != nil {
		t.Fatal("MultiPlatform Observability() non-nil without Observe")
	}
	mp.Observability().T().Instant(obsv.TrackSched, "probe")
	if snap := mp.MetricsSnapshot(); len(snap.Counters) != 0 {
		t.Fatalf("observe-off chassis snapshot not zero: %+v", snap)
	}
	if err := mp.WriteTimeline(io.Discard); !errors.Is(err, ErrObserveOff) {
		t.Fatalf("chassis WriteTimeline err = %v, want ErrObserveOff", err)
	}
	if err := mp.EstablishTrustAll(); err != nil {
		t.Fatal(err)
	}
	s, err := mp.NewScheduler(SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	out, err = mustResult(t, h)
	if err != nil {
		t.Fatal(err)
	}
	checkXOR(t, task.Input, out)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerObservability turns the hub on and asserts the serving
// metrics and spans the issue promises: admission and rejection
// counters, queue-depth gauge, queue-wait histogram, and the admit /
// queue_wait / execute span triple on the sched track.
func TestSchedulerObservability(t *testing.T) {
	mp, err := NewMultiPlatform([]xpu.Profile{xpu.A100, xpu.A100})
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	mp.Observe()
	if mp.Observability() == nil {
		t.Fatal("Observability() nil after Observe")
	}
	if err := mp.EstablishTrustAll(); err != nil {
		t.Fatal(err)
	}
	s, err := mp.NewScheduler(SchedulerConfig{Slots: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	var enteredOnce sync.Once
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	t.Cleanup(releaseOnce)
	s.execGate = func(int) {
		enteredOnce.Do(func() { close(entered) })
		<-release
	}

	task := schedTask(2, 256)
	h1, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	h2, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	cctx, ccancel := context.WithCancel(context.Background())
	h3, err := s.Submit(cctx, TenantTask{Tenant: 1, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	ccancel()
	if _, err := mustResult(t, h3); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	releaseOnce()
	for _, h := range []*Handle{h1, h2} {
		if _, err := mustResult(t, h); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	snap := mp.MetricsSnapshot()
	for counter, min := range map[string]uint64{
		"sched.admitted{tenant=0}":               2,
		"sched.rejected{reason=queue_full}":      1,
		"sched.completed{tenant=0,status=ok}":    2,
		"sched.canceled{stage=queued}":           1,
		"sched.completed{tenant=1,status=error}": 1,
	} {
		if got := snap.Counters[counter]; got < min {
			t.Errorf("counter %s = %d, want >= %d (have %v)", counter, got, min, snap.Counters)
		}
	}
	if _, ok := snap.Gauges["sched.queue_depth{tenant=0}"]; !ok {
		t.Error("queue-depth gauge missing")
	}
	histSeen := false
	for _, hv := range snap.Hists {
		if hv.Name == "sched.queue_wait_ns{tenant=0}" && hv.Count >= 2 {
			histSeen = true
		}
	}
	if !histSeen {
		t.Error("queue-wait histogram missing or undersampled")
	}
	var buf bytes.Buffer
	if err := mp.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{`"admit"`, `"queue_wait"`, `"execute"`, `"sched"`} {
		if !bytes.Contains(buf.Bytes(), []byte(span)) {
			t.Errorf("timeline missing %s", span)
		}
	}
}
