package ccai

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"testing"

	"ccai/internal/attest"
	"ccai/internal/hrot"
	"ccai/internal/xpu"
)

func newVendorCA(t *testing.T) *ecdsa.PrivateKey {
	t.Helper()
	ca, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestPlatformSecureBootMeasuresPolicy(t *testing.T) {
	ca := newVendorCA(t)
	p, err := NewPlatform(Config{XPU: xpu.A100, Mode: Protected})
	if err != nil {
		t.Fatal(err)
	}
	blade, err := p.SecureBoot(ca)
	if err != nil {
		t.Fatal(err)
	}
	if !blade.Booted() || p.Blade != blade {
		t.Fatal("boot did not populate the platform")
	}
	var zero hrot.Digest
	for _, pcr := range []int{hrot.PCRBitstream, hrot.PCRFirmware, hrot.PCRPolicy, hrot.PCRXPU} {
		if blade.PCRs().Read(pcr) == zero {
			t.Fatalf("PCR %d unmeasured", pcr)
		}
	}
	// The measured policy image is the live rule set, non-empty.
	if len(p.BootPolicyImage()) == 0 {
		t.Fatal("boot policy image empty")
	}
}

func TestPlatformSecureBootSensitiveToPolicy(t *testing.T) {
	ca := newVendorCA(t)
	a, err := NewPlatform(Config{XPU: xpu.A100, Mode: Protected})
	if err != nil {
		t.Fatal(err)
	}
	bladeA, err := a.SecureBoot(ca)
	if err != nil {
		t.Fatal(err)
	}
	// A different device profile installs window rules over a BAR of
	// the same geometry, but its firmware PCR differs; more to the
	// point, a platform whose *policy* got an extra rule diverges in
	// PCRPolicy.
	b, err := NewPlatform(Config{XPU: xpu.A100, Mode: Protected})
	if err != nil {
		t.Fatal(err)
	}
	b.recordBootRule(b.bootRules[0]) // policy image differs by one rule
	bladeB, err := b.SecureBoot(ca)
	if err != nil {
		t.Fatal(err)
	}
	if bladeA.PCRs().Read(hrot.PCRPolicy) == bladeB.PCRs().Read(hrot.PCRPolicy) {
		t.Fatal("policy substitution not reflected in PCRs")
	}
}

func TestPlatformSecureBootVanillaRejected(t *testing.T) {
	ca := newVendorCA(t)
	p, err := NewPlatform(Config{XPU: xpu.A100, Mode: Vanilla})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SecureBoot(ca); err == nil {
		t.Fatal("vanilla platform secure-booted")
	}
}

// TestBootToAttestationToTask is the full deployment flow: measured
// boot → remote attestation against golden PCRs → key provisioning →
// confidential task.
func TestBootToAttestationToTask(t *testing.T) {
	ca := newVendorCA(t)
	p, err := NewPlatform(Config{XPU: xpu.S60, Mode: Protected})
	if err != nil {
		t.Fatal(err)
	}
	blade, err := p.SecureBoot(ca)
	if err != nil {
		t.Fatal(err)
	}

	platform, err := attest.NewPlatform(blade)
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := attest.NewVerifier(&ca.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := platform.Establish(verifier.Hello()); err != nil {
		t.Fatal(err)
	}
	if err := verifier.Establish(platform.Hello()); err != nil {
		t.Fatal(err)
	}
	if err := verifier.ValidateCertificates(platform.Certificates()); err != nil {
		t.Fatal(err)
	}
	sel := []int{hrot.PCRBitstream, hrot.PCRFirmware, hrot.PCRPolicy, hrot.PCRXPU}
	verifier.Expected = [][]byte{blade.PCRs().Snapshot(sel)}
	ch, err := verifier.NewChallenge(1, sel)
	if err != nil {
		t.Fatal(err)
	}
	quote, err := platform.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.Verify(ch, quote); err != nil {
		t.Fatal(err)
	}

	// Attestation passed: provision and run.
	if err := p.EstablishTrust(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	out, err := p.RunTask(Task{Input: []byte("attested end-to-end"), Kernel: KernelAdd, Param: 0})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "attested end-to-end" {
		t.Fatalf("out = %q", out)
	}
}
