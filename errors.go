package ccai

import (
	"context"
	"errors"
	"fmt"

	"ccai/internal/llm"
	"ccai/internal/sched"
	"ccai/internal/secmem"
)

// The v2 error taxonomy: every failure the public API reports is
// rooted in one of these sentinels, wrapped with %w so errors.Is
// matches across package boundaries regardless of the tenant/context
// decoration a particular site adds. Callers branch on the sentinel,
// log the wrapped string.
var (
	// ErrNotTrusted is returned when a protected operation runs before
	// EstablishTrust, or after the session was torn down (fail-closed
	// recovery, Close).
	ErrNotTrusted = errors.New("ccai: trust not established")

	// ErrAttestFailed is returned when the PCIe-SC's software-based
	// firmware attestation (§6) rejects the xPU: keys are never
	// provisioned to a device that answers the challenge wrongly.
	ErrAttestFailed = errors.New("ccai: xPU firmware attestation failed")

	// ErrAuthFailure marks cryptographic authentication failures on the
	// protected datapath (GCM tag mismatch on collect, tampered chunk).
	// It aliases secmem.ErrAuth so errors already wrapping the engine's
	// sentinel match without re-wrapping.
	ErrAuthFailure = secmem.ErrAuth

	// ErrQueueFull is the scheduler's fail-fast backpressure signal: the
	// tenant's bounded ingress queue is at capacity and the request was
	// rejected at admission. It aliases the internal queue's sentinel.
	ErrQueueFull = sched.ErrQueueFull

	// ErrDeadlineExceeded is returned for a request whose context
	// deadline expired — at admission, while queued, or in flight. It
	// aliases context.DeadlineExceeded so errors.Is matches either
	// spelling.
	ErrDeadlineExceeded = context.DeadlineExceeded

	// ErrNoTenant is returned for a task addressed to a tenant index a
	// MultiPlatform does not have.
	ErrNoTenant = errors.New("ccai: no such tenant")

	// ErrEmptyInput is returned for a task with no input bytes.
	ErrEmptyInput = errors.New("ccai: empty task input")

	// ErrSchedulerClosed is returned by Submit after Drain or Shutdown:
	// the scheduler no longer admits work.
	ErrSchedulerClosed = errors.New("ccai: scheduler closed")

	// ErrObserveOff is returned by accessors that need the observability
	// layer when the platform was built without it. Metric and span
	// accessors themselves are nil-safe (see Observability) — only
	// exports that would otherwise produce an empty artifact error.
	ErrObserveOff = errors.New("ccai: observability not enabled (Config.Observe / WithObserve)")

	// ErrSessionClosed is returned for operations on an InferenceSession
	// after Close — including Close racing an in-flight Prefill/Decode:
	// the session's KV region is gone and no step may touch it.
	ErrSessionClosed = errors.New("ccai: inference session closed")

	// ErrKVBudgetExceeded is returned at OpenSession when the session's
	// KV-cache reservation does not fit the engine budget (or the
	// per-session device window), and at Prefill when the prompt
	// overruns the reservation. It aliases the engine's sentinel so
	// errors already wrapping llm.ErrKVBudget match unchanged.
	ErrKVBudgetExceeded = llm.ErrKVBudget

	// ErrStreamAborted is returned (as the Err of the final
	// DecodeChunk, and by Prefill) when a decode stream dies before its
	// final chunk: consumer context cancelled, injected scheduler
	// cancel, or a step failing terminally mid-stream.
	ErrStreamAborted = errors.New("ccai: decode stream aborted")
)

// ctxErr decorates a context error; errors.Is still matches
// context.Canceled / ErrDeadlineExceeded through the wrap.
func ctxErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("ccai: request aborted: %w", err)
}
