package ccai

// Observability-layer integration tests: a protected task's exported
// timeline must cover the full pipeline (classify → seal → DMA →
// tag-match → open), recovery rungs must increment their metrics
// exactly once under fixed fault seeds (the fault_matrix_test.go
// seeds), and no metric, span, or exported timeline may ever contain
// payload plaintext.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ccai/internal/adaptor"
	"ccai/internal/fault"
	"ccai/internal/obsv"
	"ccai/internal/pcie"
	"ccai/internal/xpu"
)

// observedPlatform is protectedPlatform with the observability layer
// enabled.
func observedPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(Config{XPU: xpu.A100, Mode: Protected, Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EstablishTrust(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// timelineNames exports the timeline and returns the set of event
// names, plus the raw JSON for content assertions.
func timelineNames(t *testing.T, p *Platform) (map[string]bool, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	return names, buf.Bytes()
}

func TestTimelineCoversPipeline(t *testing.T) {
	p := observedPlatform(t)
	out, err := p.RunTask(Task{Input: secret, Kernel: KernelXOR, Param: 0x5a})
	if err != nil {
		t.Fatal(err)
	}
	for i := range secret {
		if out[i] != secret[i]^0x5a {
			t.Fatalf("byte %d wrong under observation", i)
		}
	}

	names, export := timelineNames(t, p)
	// The acceptance chain classify → seal → DMA → tag-match → open,
	// plus the stages around it.
	for _, want := range []string{
		"establish_trust", "run_task", // session/task API
		"classify",     // pcie-sc/filter
		"seal", "open", // secmem, both ends
		"dma_read", "dma_write", // xpu DMA
		"tag_match",                // core MAC lookup
		"submit",                   // tvm driver
		"stage_h2d", "collect_d2h", // adaptor staging
		"pump", "exec", // device execution
	} {
		if !names[want] {
			t.Fatalf("timeline missing %q span; have %v", want, names)
		}
	}

	// Spans recorded during the task carry its task ID.
	var classifyInTask bool
	for _, sp := range p.Observability().T().Spans() {
		if sp.Name == "classify" && sp.Task != 0 {
			classifyInTask = true
		}
	}
	if !classifyInTask {
		t.Fatal("no classify span carries a task ID")
	}

	// Confidentiality: the export and the metrics must be publishable.
	if bytes.Contains(export, secret) {
		t.Fatal("timeline export contains the plaintext secret")
	}
	metricsText := p.MetricsSnapshot().RenderText()
	if strings.Contains(metricsText, string(secret)) {
		t.Fatal("metrics text contains the plaintext secret")
	}
	for _, sp := range p.Observability().T().Spans() {
		for _, a := range sp.Attrs() {
			if strings.Contains(a.Val(), string(secret)) || strings.Contains(a.Key, string(secret)) {
				t.Fatalf("span %s attr %s leaks the secret", sp.Name, a.Key)
			}
		}
	}

	// The metric mirrors must agree with the SC's own statistics.
	c := p.MetricsSnapshot().Counters
	st := p.SC.Stats()
	for _, m := range []struct {
		name string
		want uint64
	}{
		{"sc.decrypted_chunks", st.DecryptedChunks},
		{"sc.encrypted_chunks", st.EncryptedChunks},
		{"sc.verified_chunks", st.VerifiedChunks},
		{"sc.auth_failures", st.AuthFailures},
	} {
		if c[m.name] != m.want {
			t.Fatalf("%s = %d, SC stats say %d", m.name, c[m.name], m.want)
		}
	}
	if c["sc.decrypted_chunks"] == 0 || c["sc.encrypted_chunks"] == 0 {
		t.Fatal("protected task decrypted/encrypted nothing; test vacuous")
	}
	if c[obsv.Name("task.runs", "mode", "ccAI", "status", "ok")] != 1 {
		t.Fatalf("task.runs counter wrong: %v", c)
	}
}

func TestTimelineShowsFaultRecovery(t *testing.T) {
	p := observedPlatform(t)
	inj := fault.NewInjector(fault.Single(matrixSeeds[0], fault.DoorbellHang, 0, 1))
	inj.SetObserver(p.Obs)
	p.Device.SetFaultHook(inj.DeviceFault)

	out, err := p.RunTask(Task{Input: taskInput(), Kernel: KernelXOR, Param: 0x5a})
	if err != nil {
		t.Fatalf("single doorbell hang must be recoverable: %v", err)
	}
	if in := taskInput(); out[0] != in[0]^0x5a {
		t.Fatal("recovered task produced wrong data")
	}

	names, _ := timelineNames(t, p)
	for _, want := range []string{"fault_injected", "doorbell_hang", "recovery.repost_tags", "kick"} {
		if !names[want] {
			t.Fatalf("fault-run timeline missing %q; have %v", want, names)
		}
	}
	c := p.MetricsSnapshot().Counters
	if got := c[obsv.Name("fault.fired", "class", fault.DoorbellHang.String())]; got != 1 {
		t.Fatalf("fault.fired = %d, want 1", got)
	}
	if c["xpu.doorbell_hangs"] != 1 || c["driver.kicks"] != 1 {
		t.Fatalf("hang/kick counters wrong: hangs=%d kicks=%d",
			c["xpu.doorbell_hangs"], c["driver.kicks"])
	}
}

// assertRecoveryMirrors checks every adaptor.recovery.* counter against
// the RecoveryStats struct the fault matrix already trusts.
func assertRecoveryMirrors(t *testing.T, p *Platform) {
	t.Helper()
	c := p.MetricsSnapshot().Counters
	rec := p.Adaptor.Recovery()
	for _, m := range []struct {
		name string
		want uint64
	}{
		{"adaptor.recovery.timeouts", rec.Timeouts},
		{"adaptor.recovery.retries", rec.Retries},
		{"adaptor.recovery.recovered", rec.Recovered},
		{"adaptor.recovery.stale_suppressed", rec.StaleSuppressed},
		{"adaptor.recovery.crypto_retries", rec.CryptoRetries},
		{"adaptor.recovery.reposts", rec.Reposts},
		{"adaptor.recovery.resyncs", rec.Resyncs},
		{"adaptor.recovery.exhausted", rec.Exhausted},
		{"adaptor.recovery.fail_closed", rec.FailClosed},
	} {
		if c[m.name] != m.want {
			t.Fatalf("%s = %d but RecoveryStats says %d", m.name, c[m.name], m.want)
		}
	}
}

// TestRecoveryRungMetricsExactlyOnce injects one fault per recovery
// rung under a fixed matrix seed and asserts the rung's metric
// increments exactly once — and mirrors RecoveryStats bit-for-bit.
func TestRecoveryRungMetricsExactlyOnce(t *testing.T) {
	seed := matrixSeeds[0]
	run := func(t *testing.T, p *Platform) {
		t.Helper()
		out, err := p.RunTask(Task{Input: taskInput(), Kernel: KernelXOR, Param: 0x5a})
		if err != nil {
			t.Fatalf("single fault must be recoverable: %v", err)
		}
		if in := taskInput(); out[0] != in[0]^0x5a {
			t.Fatal("recovered task produced wrong data")
		}
	}

	t.Run("crypto_retry", func(t *testing.T) {
		p := observedPlatform(t)
		inj := fault.NewInjector(fault.Single(seed, fault.CryptoTransient, 0, 1))
		inj.SetObserver(p.Obs)
		p.Adaptor.InstallCryptoFault(inj.CryptoFault)
		run(t, p)
		c := p.MetricsSnapshot().Counters
		if c["adaptor.recovery.crypto_retries"] != 1 {
			t.Fatalf("crypto_retries = %d, want exactly 1", c["adaptor.recovery.crypto_retries"])
		}
		if c["adaptor.recovery.recovered"] != 1 {
			t.Fatalf("recovered = %d, want exactly 1", c["adaptor.recovery.recovered"])
		}
		if c["adaptor.recovery.fail_closed"] != 0 || c["adaptor.recovery.exhausted"] != 0 {
			t.Fatal("recoverable fault must not exhaust or fail closed")
		}
		assertRecoveryMirrors(t, p)
	})

	t.Run("tag_repost", func(t *testing.T) {
		p := observedPlatform(t)
		inj := fault.NewInjector(fault.Single(seed, fault.TagLoss, 0, 1))
		inj.SetObserver(p.Obs)
		p.SC.Tags().SetFaultHook(inj.TagFault)
		run(t, p)
		c := p.MetricsSnapshot().Counters
		if c["adaptor.recovery.reposts"] != 1 {
			t.Fatalf("reposts = %d, want exactly 1", c["adaptor.recovery.reposts"])
		}
		if c["sc.tags.dropped_by_fault"] != 1 {
			t.Fatalf("tags dropped = %d, want exactly 1", c["sc.tags.dropped_by_fault"])
		}
		assertRecoveryMirrors(t, p)
	})

	t.Run("stale_suppressed", func(t *testing.T) {
		// Completion reaping serves Head() from host memory, so with it
		// on the steady-state task issues no MMIO reads at all and the
		// stale-completion rung has nothing to suppress. Pin the rung on
		// the legacy read path.
		opts := adaptor.Optimized()
		opts.CompletionReap = false
		p, err := NewPlatform(Config{XPU: xpu.A100, Mode: Protected, Observe: true, Adaptor: &opts})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.EstablishTrust(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		// Two firings: the first stashes a completion (a timeout), the
		// second delivers it in place of a newer one — a stale tag the
		// adaptor must suppress exactly once.
		inj := fault.NewInjector(fault.Single(seed, fault.StaleCompletion, 0, 2))
		inj.SetObserver(p.Obs)
		// Scope to the Adaptor's own transactions: the SC's submission-
		// ring fetches retry stale completions internally and would
		// swallow both firings before the Adaptor ever reads.
		inj.SetMatch(func(pk *pcie.Packet) bool { return pk.Requester == TVMID })
		p.Host.AddTap(inj)
		run(t, p)
		c := p.MetricsSnapshot().Counters
		if c["adaptor.recovery.stale_suppressed"] != 1 {
			t.Fatalf("stale_suppressed = %d, want exactly 1", c["adaptor.recovery.stale_suppressed"])
		}
		if c["adaptor.recovery.retries"] == 0 {
			t.Fatal("stale completions must cost retries")
		}
		assertRecoveryMirrors(t, p)
	})
}

// TestFailClosedTeardownMetrics hangs every doorbell so the recovery
// ladder exhausts and the session must fail closed — exactly once, with
// the teardown visible in both metrics and the timeline.
func TestFailClosedTeardownMetrics(t *testing.T) {
	p := observedPlatform(t)
	inj := fault.NewInjector(fault.Single(matrixSeeds[0], fault.DoorbellHang, 0, 16))
	inj.SetObserver(p.Obs)
	p.Device.SetFaultHook(inj.DeviceFault)

	if _, err := p.RunTask(Task{Input: taskInput(), Kernel: KernelXOR, Param: 0x5a}); err == nil {
		t.Fatal("permanently hung doorbell must fail the task")
	}
	if p.trusted {
		t.Fatal("session still trusted after fail-closed teardown")
	}
	c := p.MetricsSnapshot().Counters
	if c["adaptor.recovery.fail_closed"] != 1 {
		t.Fatalf("fail_closed = %d, want exactly 1", c["adaptor.recovery.fail_closed"])
	}
	if c["sc.teardowns"] == 0 {
		t.Fatal("SC never saw the teardown")
	}
	if c[obsv.Name("task.runs", "mode", "ccAI", "status", "error")] != 1 {
		t.Fatalf("task.runs error counter wrong: %v", c)
	}
	names, _ := timelineNames(t, p)
	for _, want := range []string{"recovery.fail_closed", "teardown"} {
		if !names[want] {
			t.Fatalf("fail-closed timeline missing %q", want)
		}
	}
	assertRecoveryMirrors(t, p)
}

// TestObservabilityOffIsInert pins the zero-cost contract at the API
// level: without Config.Observe the hub is nil, exports refuse, and the
// snapshot is empty — while the task still runs.
func TestObservabilityOffIsInert(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	if p.Observability() != nil {
		t.Fatal("hub exists without Config.Observe")
	}
	if _, err := p.RunTask(Task{Input: []byte("plain run"), Kernel: KernelAdd, Param: 1}); err != nil {
		t.Fatal(err)
	}
	if n := len(p.MetricsSnapshot().Counters); n != 0 {
		t.Fatalf("disabled platform recorded %d counters", n)
	}
	var buf bytes.Buffer
	if err := p.WriteTimeline(&buf); err == nil {
		t.Fatal("WriteTimeline must refuse when observability is off")
	}
}
