package ccai

import (
	"context"
	"fmt"
	"sync"
)

// This file is the multi-tenant serving engine: the concurrency layer
// that turns a MultiPlatform from "several isolated slices you drive
// one at a time" into one chassis serving all tenants at once. Each
// tenant gets its own goroutine-pipeline (Adaptor → SC unit → device);
// the layers tenants share — host bus, host bridge, mux, IOMMU,
// address space, MSI log — are individually thread-safe, so pipelines
// never coordinate beyond those internal locks.

// TenantTask addresses one Task to one tenant of a MultiPlatform.
type TenantTask struct {
	// Tenant indexes MultiPlatform.Tenants.
	Tenant int
	// Task is executed with Tenant.RunTask semantics.
	Task Task
}

// TenantResult is the outcome of one TenantTask.
type TenantResult struct {
	// Tenant and Index identify the request: Index is the position of
	// the originating TenantTask in the RunTasks input slice.
	Tenant int
	Index  int
	// Output is the task's result bytes when Err is nil.
	Output []byte
	// Err is the per-task failure, if any; one tenant's failure never
	// affects another tenant's tasks.
	Err error
}

// RunTasks executes a mixed batch of tenant tasks concurrently. Since
// the v2 API it is a thin synchronous wrapper over the Scheduler: the
// whole batch is admitted up front (queues sized to fit, so admission
// never rejects), dispatched under weighted-fair scheduling with one
// execution slot per tenant, and collected. Per-tenant submission
// order is preserved (a tenant's pipeline is inherently serial — one
// command ring, one stream counter sequence). Results come back
// indexed by input position, so results[i] always answers tasks[i].
//
// Tasks addressed to an out-of-range tenant fail with ErrNoTenant in
// their result slot; everything else still runs. Callers that need
// backpressure, cancellation, or deadlines should use the Scheduler
// directly.
func (mp *MultiPlatform) RunTasks(tasks []TenantTask) []TenantResult {
	results := make([]TenantResult, len(tasks))
	for i, tt := range tasks {
		results[i] = TenantResult{Tenant: tt.Tenant, Index: i}
	}
	if len(tasks) == 0 {
		return results
	}
	s, err := mp.NewScheduler(SchedulerConfig{QueueDepth: len(tasks)})
	if err != nil {
		for i := range results {
			results[i].Err = err
		}
		return results
	}
	handles := make([]*Handle, len(tasks))
	for i, tt := range tasks {
		h, err := s.submit(context.Background(), tt, i)
		if err != nil {
			results[i].Err = err
			continue
		}
		handles[i] = h
	}
	for i, h := range handles {
		if h != nil {
			results[i], _ = h.Wait(context.Background())
		}
	}
	_ = s.Shutdown(context.Background())
	return results
}

// EstablishTrustAll runs every tenant's trust establishment
// concurrently and returns the first error encountered (all tenants
// are attempted regardless).
func (mp *MultiPlatform) EstablishTrustAll() error {
	errs := make([]error, len(mp.Tenants))
	var wg sync.WaitGroup
	for i, t := range mp.Tenants {
		wg.Add(1)
		go func(i int, t *Tenant) {
			defer wg.Done()
			errs[i] = t.EstablishTrust()
		}(i, t)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("ccai: tenant %d: %w", i, err)
		}
	}
	return nil
}
