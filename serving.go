package ccai

import (
	"fmt"
	"sync"
)

// This file is the multi-tenant serving engine: the concurrency layer
// that turns a MultiPlatform from "several isolated slices you drive
// one at a time" into one chassis serving all tenants at once. Each
// tenant gets its own goroutine-pipeline (Adaptor → SC unit → device);
// the layers tenants share — host bus, host bridge, mux, IOMMU,
// address space, MSI log — are individually thread-safe, so pipelines
// never coordinate beyond those internal locks.

// TenantTask addresses one Task to one tenant of a MultiPlatform.
type TenantTask struct {
	// Tenant indexes MultiPlatform.Tenants.
	Tenant int
	// Task is executed with Tenant.RunTask semantics.
	Task Task
}

// TenantResult is the outcome of one TenantTask.
type TenantResult struct {
	// Tenant and Index identify the request: Index is the position of
	// the originating TenantTask in the RunTasks input slice.
	Tenant int
	Index  int
	// Output is the task's result bytes when Err is nil.
	Output []byte
	// Err is the per-task failure, if any; one tenant's failure never
	// affects another tenant's tasks.
	Err error
}

// RunTasks executes a mixed batch of tenant tasks concurrently: one
// goroutine per addressed tenant, each running that tenant's tasks
// sequentially in submission order (a tenant's pipeline is inherently
// serial — one command ring, one stream counter sequence). Results
// come back indexed by input position, so results[i] always answers
// tasks[i].
//
// Tasks addressed to an out-of-range tenant fail with an error in
// their result slot; everything else still runs.
func (mp *MultiPlatform) RunTasks(tasks []TenantTask) []TenantResult {
	results := make([]TenantResult, len(tasks))
	// Partition by tenant, preserving per-tenant submission order.
	byTenant := make(map[int][]int)
	for i, tt := range tasks {
		results[i] = TenantResult{Tenant: tt.Tenant, Index: i}
		if tt.Tenant < 0 || tt.Tenant >= len(mp.Tenants) {
			results[i].Err = fmt.Errorf("ccai: no tenant %d (have %d)", tt.Tenant, len(mp.Tenants))
			continue
		}
		byTenant[tt.Tenant] = append(byTenant[tt.Tenant], i)
	}
	var wg sync.WaitGroup
	for tenant, idxs := range byTenant {
		wg.Add(1)
		go func(t *Tenant, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				out, err := t.RunTask(tasks[i].Task)
				results[i].Output, results[i].Err = out, err
			}
		}(mp.Tenants[tenant], idxs)
	}
	wg.Wait()
	return results
}

// EstablishTrustAll runs every tenant's trust establishment
// concurrently and returns the first error encountered (all tenants
// are attempted regardless).
func (mp *MultiPlatform) EstablishTrustAll() error {
	errs := make([]error, len(mp.Tenants))
	var wg sync.WaitGroup
	for i, t := range mp.Tenants {
		wg.Add(1)
		go func(i int, t *Tenant) {
			defer wg.Done()
			errs[i] = t.EstablishTrust()
		}(i, t)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("ccai: tenant %d: %w", i, err)
		}
	}
	return nil
}
