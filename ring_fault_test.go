package ccai

// Submission-ring fault matrix entries (ISSUE 8): the ring's two
// failure families against DESIGN.md §6. A lost batch doorbell is a
// benign link fault — the flush retry ladder re-publishes the same
// window and the SC's idempotent [head, tail) consumption absorbs the
// duplicate. Corrupted ring framing is indistinguishable from an
// attack on the submission path — the SC refuses the batch, raises the
// header status word, and the producer fails closed. And the whole
// point of the ring: the batched doorbell must cut per-task MMIO
// writes by at least 4× against the same platform with the ring off.

import (
	"bytes"
	"testing"

	"ccai/internal/adaptor"
	"ccai/internal/attack"
	"ccai/internal/core"
	"ccai/internal/pcie"
	"ccai/internal/xpu"
)

// TestRingDoorbellDropRecovers deletes the first batch doorbell in
// flight. The SC never sees the publish, the producer observes a head
// that did not advance, and the retry ladder re-rings; the task must
// complete with the correct result at the cost of retries only.
func TestRingDoorbellDropRecovers(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	drop := &attack.Dropper{
		Match: func(pk *pcie.Packet) bool {
			return pk.Kind == pcie.MWr && pk.Requester == TVMID &&
				pk.Address == scBARBase+core.RegRingDoorbell
		},
		Count: 1,
	}
	p.Host.AddTap(drop)
	in := taskInput()
	out, err := p.RunTask(Task{Input: in, Kernel: KernelAdd, Param: 2})
	if drop.Dropped() == 0 {
		t.Fatal("dropper never fired; ring doorbell not exercised")
	}
	if err != nil {
		t.Fatalf("one lost doorbell must be recoverable: %v", err)
	}
	for i := range in {
		if out[i] != in[i]+2 {
			t.Fatalf("recovered output wrong at byte %d", i)
		}
	}
	rec := p.Adaptor.Recovery()
	if rec.Retries == 0 || rec.Recovered == 0 {
		t.Fatalf("doorbell loss left no recovery trace: %+v", rec)
	}
	if rec.FailClosed != 0 {
		t.Fatalf("benign doorbell loss must not fail closed: %+v", rec)
	}
}

// ringSeqCorrupter flips the sequence field of the first entry in
// every ring-fetch completion (exact RingSlotSize multiples) toward
// the SC — tampered ring framing, the fail-closed family.
type ringSeqCorrupter struct{ hits int }

func (c *ringSeqCorrupter) Tap(p *pcie.Packet) *pcie.Packet {
	if p.Kind != pcie.CplD || len(p.Payload) == 0 || len(p.Payload)%core.RingSlotSize != 0 {
		return p
	}
	q := p.Clone()
	q.Payload[4] ^= 0x80 // entry 0 seq field
	c.hits++
	return q
}

// TestRingDesyncFailsClosed corrupts ring framing in flight: the SC
// must reject the batch (config reject + status word, head pinned) and
// the producer must tear the session down rather than limp — with the
// §6 teardown invariants intact.
func TestRingDesyncFailsClosed(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	snoop := attack.NewSnooper()
	p.Host.AddTap(snoop)
	corrupt := &ringSeqCorrupter{}
	p.Host.AddTap(corrupt)

	rejBefore := p.SC.Stats().ConfigRejects
	_, err := p.RunTask(Task{Input: taskInput(), Kernel: KernelAdd, Param: 1})
	if corrupt.hits == 0 {
		t.Fatal("corrupter never fired; ring fetch not exercised")
	}
	if err == nil {
		t.Fatal("task succeeded over a desynced submission ring")
	}
	if p.SC.Stats().ConfigRejects <= rejBefore {
		t.Fatal("SC accepted corrupted ring framing without a config reject")
	}
	rec := p.Adaptor.Recovery()
	if rec.FailClosed == 0 {
		t.Fatalf("ring desync did not fail closed: %+v", rec)
	}
	if rec.LastFailure != "submission ring desync" {
		t.Fatalf("LastFailure = %q", rec.LastFailure)
	}
	// Fail-closed means torn down: no live stream contexts, no keys, no
	// plaintext ever on the wire.
	if n := p.SC.Params().Active(); n != 0 {
		t.Fatalf("%d live stream contexts after ring fail-closed", n)
	}
	if p.tvmKeys.Count() != 0 {
		t.Fatal("TVM key material survived ring fail-closed")
	}
	if snoop.SawPlaintext(secret) {
		t.Fatal("plaintext on host bus during ring desync episode")
	}
}

// TestRingCutsMMIOWritesAtLeast4x is the ISSUE 8 acceptance gate: the
// batched submission ring must reduce MMIO writes per 64 KiB staged
// task by ≥4× against the identical platform with only the ring
// disabled, measured through the obsv counters.
func TestRingCutsMMIOWritesAtLeast4x(t *testing.T) {
	writesPerTask := func(t *testing.T, opts adaptor.Options) uint64 {
		t.Helper()
		p, err := New(WithXPU(xpu.A100), WithMode(Protected), WithObserve(), WithAdaptor(opts))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		if err := p.EstablishTrust(); err != nil {
			t.Fatal(err)
		}
		in := bytes.Repeat([]byte{0x42}, 64<<10)
		before := p.MetricsSnapshot().Counters["adaptor.mmio.writes"]
		if _, err := p.RunTask(Task{Input: in, Kernel: KernelAdd, Param: 1}); err != nil {
			t.Fatal(err)
		}
		return p.MetricsSnapshot().Counters["adaptor.mmio.writes"] - before
	}

	ringOff := adaptor.Optimized()
	ringOff.SubmitRing = false
	off := writesPerTask(t, ringOff)
	on := writesPerTask(t, adaptor.Optimized())
	t.Logf("MMIO writes per 64 KiB task: ring on = %d, ring off = %d", on, off)
	if on == 0 || off/on < 4 {
		t.Fatalf("submission ring reduced MMIO writes only %dx (%d -> %d); need >=4x", off/on, off, on)
	}
}
