package ccai

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"ccai/internal/adaptor"
	"ccai/internal/fault"
	"ccai/internal/llm"
	"ccai/internal/obsv"
	"ccai/internal/secmem"
	"ccai/internal/xpu"
)

// Continuous token-level LLM serving (DESIGN.md §16). A tenant opens a
// streaming InferenceSession; the chassis-wide continuous-batching
// engine (internal/llm) interleaves prefill and per-chunk decode steps
// across every live session of every tenant, vLLM-style. The
// confidential contract per session:
//
//   - The KV-cache is sealed and staged into protected device memory
//     exactly once, at prefill; every decode step computes against the
//     resident copy. No per-token KV traffic crosses PCIe — the gated
//     TestKVStagedOncePerSession pins this.
//   - Per-step traffic (token ids up, decode chunk down) rides the
//     same sealed datapath as blob tasks: ring-batched descriptors,
//     per-epoch cached ciphers, completion writeback.
//   - A mid-decode rekey trips the session's epoch fence
//     (secmem.Fence): the resident KV stays valid — it was decrypted on
//     arrival and never re-staged — while all new step traffic seals
//     under the fresh epoch. KVFenced exposes the transition.

// Per-tenant device-memory carving for sessions. Blob tasks use
// [0x0, 0x80000); sessions get fixed windows above that: per slot a KV
// region, a token-id scratch, and a chunk output buffer.
const (
	llmSessBase      = 0x80000 // first session slot
	llmSlotSpan      = 0x18000 // 96 KiB per slot
	llmKVMax         = 0x14000 // 80 KiB resident KV per session
	llmIdsOff        = 0x14000 // token-id scratch inside the slot
	llmOutOff        = 0x16000 // decode-chunk output inside the slot
	llmSlotsPerVault = 5       // slots per tenant: 0x80000+5*0x18000 < 1 MiB device memory
)

// DecodeChunk is one streamed unit of generated tokens. Chunks arrive
// in Index order; exactly one chunk has Final set (clean end of
// stream) or Err set (aborted stream, no further chunks).
type DecodeChunk struct {
	// Index is the chunk ordinal: 0 is emitted by prefill, the rest by
	// decode steps.
	Index int
	// Tokens holds ChunkSpan(Index)×TokenBytes verified plaintext bytes
	// (they crossed PCIe sealed; CollectD2H authenticated them).
	Tokens []byte
	// Final marks the stream's last data chunk.
	Final bool
	// Err, when set, marks an aborted stream: errors.Is matches
	// ErrStreamAborted plus the underlying cause.
	Err error
}

// InferenceSession is one live generation stream on a tenant. The
// lifecycle is OpenSession → Prefill → Decode (consume the channel) →
// Close; Close is deterministic and idempotent — it releases the KV
// reservation, device slot and pinned host region synchronously.
type InferenceSession struct {
	t     *Tenant
	srv   *llmServer
	cfg   llm.Config
	state *llm.SessionState
	sctx  context.Context

	devSlot int
	devBase uint64

	mu            sync.Mutex
	prompt        []byte
	digest        uint64
	kvBytes       int64
	kvHost        []byte // KVInit image, dropped once staged
	kvRegion      *adaptor.Region
	kvSealEpoch   uint32
	fence         secmem.Fence
	finished      bool
	err           error
	ch            chan DecodeChunk
	prefillDone   chan struct{}
	prefillClosed bool
	ctxStops      []func() bool

	closed   atomic.Bool
	kvFenced atomic.Bool
	kvStaged atomic.Bool
}

// llmServer is the chassis's lazily-started inference dispatcher: a
// small worker pool pulling steps off the continuous-batching engine
// and executing them on the owning tenant's sealed pipeline.
type llmServer struct {
	mp   *MultiPlatform
	eng  *llm.Engine
	stop chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	devFree [][]int // per tenant index: free session slots
}

// llmServer returns the chassis inference server, starting it on first
// use with the Config.LLM engine parameters.
func (mp *MultiPlatform) llmServer() *llmServer {
	mp.llmMu.Lock()
	defer mp.llmMu.Unlock()
	if mp.llmSrv != nil {
		return mp.llmSrv
	}
	eng, err := llm.NewEngine(mp.llmCfg)
	if err != nil {
		// EngineConfig is fully defaulted; the only failure is an absurd
		// MaxSessions, which NewMultiPlatform's options cannot produce.
		panic(fmt.Sprintf("ccai: llm engine: %v", err))
	}
	srv := &llmServer{mp: mp, eng: eng, stop: make(chan struct{})}
	srv.devFree = make([][]int, len(mp.Tenants))
	for i := range srv.devFree {
		for s := llmSlotsPerVault - 1; s >= 0; s-- {
			srv.devFree[i] = append(srv.devFree[i], s)
		}
	}
	workers := mp.llmCfg.Workers
	if workers <= 0 {
		workers = 2
	}
	srv.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go srv.worker()
	}
	mp.llmSrv = srv
	return srv
}

// Engine exposes the continuous-batching engine (step log, KV
// accounting) — observability for tests and benchmarks.
func (mp *MultiPlatform) Engine() *llm.Engine { return mp.llmServer().eng }

func (srv *llmServer) shutdown() {
	srv.eng.Close()
	close(srv.stop)
	srv.wg.Wait()
}

func (srv *llmServer) allocSlot(tenant int) (int, error) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	free := srv.devFree[tenant]
	if len(free) == 0 {
		return 0, fmt.Errorf("%w: tenant %d: all %d device session slots live",
			ErrQueueFull, tenant, llmSlotsPerVault)
	}
	slot := free[len(free)-1]
	srv.devFree[tenant] = free[:len(free)-1]
	return slot, nil
}

func (srv *llmServer) freeSlot(tenant, slot int) {
	srv.mu.Lock()
	srv.devFree[tenant] = append(srv.devFree[tenant], slot)
	srv.mu.Unlock()
}

func (srv *llmServer) probeFault(point string) bool {
	fn := srv.mp.llmFault.Load()
	return fn != nil && (*fn)(point)
}

// SetLLMFaultHook installs the deterministic fault probe on the
// inference dispatcher (see fault.Injector.SchedFault); nil clears it.
// Probed at every step dispatch: SchedPointDequeue firing requeues the
// step (mid-queue stall), SchedPointCancel firing aborts the stream at
// the claim boundary.
func (mp *MultiPlatform) SetLLMFaultHook(fn func(point string) bool) {
	if fn == nil {
		mp.llmFault.Store(nil)
		return
	}
	mp.llmFault.Store(&fn)
}

// worker is the dispatch loop: pull a step, run it on the owning
// session, re-arm or retire.
func (srv *llmServer) worker() {
	defer srv.wg.Done()
	for {
		st, ok := srv.eng.Next(srv.stop)
		if !ok {
			return
		}
		sess, _ := st.S.Owner.(*InferenceSession)
		if sess == nil {
			srv.eng.Fail(st)
			continue
		}
		if srv.probeFault(fault.SchedPointDequeue) {
			srv.eng.Requeue(st)
			continue
		}
		if srv.probeFault(fault.SchedPointCancel) {
			sess.abort(fmt.Errorf("%w: %w", ErrStreamAborted, ctxErr(context.Canceled)))
			srv.eng.Fail(st)
			continue
		}
		if err := sess.sctx.Err(); err != nil {
			sess.abort(fmt.Errorf("%w: %w", ErrStreamAborted, ctxErr(err)))
			srv.eng.Fail(st)
			continue
		}
		if sess.closed.Load() {
			srv.eng.Fail(st)
			continue
		}
		if err := sess.runStep(st); err != nil {
			sess.abort(fmt.Errorf("%w: %w", ErrStreamAborted, err))
			srv.eng.Fail(st)
			continue
		}
		srv.mp.Obs.Reg().Counter(obsv.Name("llm.steps", "kind", st.Kind.String())).Inc()
		if !srv.eng.Complete(st) {
			sess.finish()
		}
	}
}

// OpenSession admits a streaming inference session on the tenant. KV
// budget (chassis-wide) and a device session slot (per tenant) are
// reserved here — the only point that can fail on memory; Prefill and
// decode steps never grow the reservation. ctx bounds the whole
// session: its cancellation aborts the stream. Failure modes:
// ErrNotTrusted, ErrKVBudgetExceeded, ErrQueueFull (no session slot).
func (t *Tenant) OpenSession(ctx context.Context, cfg llm.Config) (*InferenceSession, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	if t.parent == nil {
		return nil, errors.New("ccai: OpenSession needs a MultiPlatform tenant")
	}
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	trusted := t.trusted
	t.mu.Unlock()
	if !trusted {
		return nil, fmt.Errorf("ccai: tenant %d: %w", t.Index, ErrNotTrusted)
	}
	kvBytes := cfg.KVBytes(cfg.MaxPromptTokens)
	if kvBytes > llmKVMax {
		return nil, fmt.Errorf("%w: tenant %d: session KV %d B exceeds the %d B device window",
			ErrKVBudgetExceeded, t.Index, kvBytes, llmKVMax)
	}
	if max := cfg.MaxPromptTokens * cfg.TokenBytes; max > llmOutOff-llmIdsOff {
		return nil, fmt.Errorf("ccai: tenant %d: prompt reservation %d B exceeds the %d B id window",
			t.Index, max, llmOutOff-llmIdsOff)
	}
	if span := cfg.ChunkTokens * cfg.TokenBytes; span > llmSlotSpan-llmOutOff {
		return nil, fmt.Errorf("ccai: tenant %d: chunk span %d B exceeds the %d B output window",
			t.Index, span, llmSlotSpan-llmOutOff)
	}
	srv := t.parent.llmServer()
	state, err := srv.eng.Admit(cfg, cfg.MaxPromptTokens, nil)
	if err != nil {
		return nil, fmt.Errorf("ccai: tenant %d: %w", t.Index, err)
	}
	slot, err := srv.allocSlot(t.Index)
	if err != nil {
		srv.eng.Release(state)
		return nil, err
	}
	sess := &InferenceSession{
		t: t, srv: srv, cfg: cfg, state: state, sctx: ctx,
		devSlot: slot, devBase: llmSessBase + uint64(slot)*llmSlotSpan,
		kvBytes:     kvBytes,
		ch:          make(chan DecodeChunk, cfg.Chunks()+1),
		prefillDone: make(chan struct{}),
	}
	state.Owner = sess
	return sess, nil
}

// Prefill stages the session: derives the KV-cache image from the
// prompt, seals it into protected device memory (the once-per-session
// PCIe crossing), runs the prefill step and emits chunk 0 on the
// decode stream. It blocks until the step executes under the
// continuous-batching engine — competing sessions' decode steps
// interleave in front of it. Single-shot: a second call fails.
func (s *InferenceSession) Prefill(ctx context.Context, prompt []byte) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.closed.Load() {
		return fmt.Errorf("ccai: tenant %d: %w", s.t.Index, ErrSessionClosed)
	}
	if len(prompt) == 0 {
		return fmt.Errorf("ccai: tenant %d: %w", s.t.Index, ErrEmptyInput)
	}
	promptTokens := (len(prompt) + s.cfg.TokenBytes - 1) / s.cfg.TokenBytes
	if promptTokens > s.cfg.MaxPromptTokens {
		return fmt.Errorf("%w: tenant %d: prompt %d tokens exceeds the session's %d-token reservation",
			ErrKVBudgetExceeded, s.t.Index, promptTokens, s.cfg.MaxPromptTokens)
	}
	s.mu.Lock()
	if s.prompt != nil {
		s.mu.Unlock()
		return fmt.Errorf("ccai: tenant %d: session already prefilled", s.t.Index)
	}
	s.prompt = append([]byte(nil), prompt...)
	s.digest = llm.Digest(s.cfg.Seed, prompt)
	s.kvHost = llm.KVInit(s.digest, s.kvBytes)
	s.mu.Unlock()
	if err := s.srv.eng.Start(s.state); err != nil {
		return fmt.Errorf("ccai: tenant %d: %w", s.t.Index, err)
	}
	select {
	case <-s.prefillDone:
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.err
	case <-ctx.Done():
		return ctxErr(ctx.Err())
	case <-s.sctx.Done():
		return ctxErr(s.sctx.Err())
	}
}

// Decode returns the stream of sealed decode chunks, chunk 0 (from
// prefill) first. The channel closes after the Final chunk, or after
// one chunk with Err set when the stream aborts. Cancelling ctx aborts
// the stream (ErrStreamAborted).
func (s *InferenceSession) Decode(ctx context.Context) (<-chan DecodeChunk, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("ccai: tenant %d: %w", s.t.Index, ErrSessionClosed)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, ctxErr(err)
		}
		stop := context.AfterFunc(ctx, func() {
			s.abort(fmt.Errorf("%w: %w", ErrStreamAborted, ctxErr(ctx.Err())))
		})
		s.mu.Lock()
		s.ctxStops = append(s.ctxStops, stop)
		s.mu.Unlock()
	}
	return s.ch, nil
}

// KVFenced reports whether a rekey advanced the H2D key epoch under
// the session mid-decode — the resident KV (sealed under the fenced
// epoch, decrypted on arrival) stayed valid and was not re-staged.
func (s *InferenceSession) KVFenced() bool { return s.kvFenced.Load() }

// KVSealEpoch reports the key epoch the session's KV-cache was sealed
// under at prefill.
func (s *InferenceSession) KVSealEpoch() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kvSealEpoch
}

// Close deterministically releases everything the session holds: the
// engine's KV reservation and scheduling slot, the device session
// slot, and the pinned host staging region. An unfinished stream is
// aborted (consumers see ErrStreamAborted wrapping ErrSessionClosed).
// Idempotent; always nil error.
func (s *InferenceSession) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.abort(fmt.Errorf("%w: %w", ErrStreamAborted, ErrSessionClosed))
	s.srv.eng.Release(s.state)
	s.t.mu.Lock()
	if s.kvRegion != nil {
		s.kvRegion.Buf.Unpin()
		s.t.Adaptor.ReleaseRegion(s.kvRegion)
		s.kvRegion = nil
	}
	s.t.mu.Unlock()
	s.srv.freeSlot(s.t.Index, s.devSlot)
	return nil
}

// abort ends the stream with err: pending consumers receive one chunk
// carrying err, then the channel closes. No-op on a finished stream.
func (s *InferenceSession) abort(err error) {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.err = err
	if !s.prefillClosed {
		s.prefillClosed = true
		close(s.prefillDone)
	}
	stops := s.ctxStops
	s.ctxStops = nil
	ch := s.ch
	s.mu.Unlock()
	s.srv.eng.Release(s.state)
	status := "ok"
	if err != nil {
		status = "aborted"
	}
	s.srv.mp.Obs.Reg().Counter(obsv.Name("llm.sessions",
		"status", status, "tenant", strconv.Itoa(s.t.Index))).Inc()
	if err != nil {
		ch <- DecodeChunk{Index: -1, Err: err}
	}
	close(ch)
	for _, stop := range stops {
		stop()
	}
}

// finish closes the stream cleanly after the final chunk.
func (s *InferenceSession) finish() { s.abort(nil) }

// emit delivers one data chunk; the channel is sized so this never
// blocks. Dropped silently once the stream finished (late step racing
// an abort).
func (s *InferenceSession) emit(c DecodeChunk) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return
	}
	s.ch <- c
}

// runStep executes one engine step on the tenant's sealed pipeline.
// Called from dispatcher workers; t.mu serializes against blob tasks
// and other sessions of the same tenant.
func (s *InferenceSession) runStep(st *llm.Step) error {
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.closed.Load() {
		return fmt.Errorf("ccai: tenant %d: %w", t.Index, ErrSessionClosed)
	}
	if !t.trusted {
		return fmt.Errorf("ccai: tenant %d: %w", t.Index, ErrNotTrusted)
	}
	span := int64(s.cfg.ChunkSpan(st.Chunk) * s.cfg.TokenBytes)
	off := llm.StepOffset(s.digest, st.Chunk, s.kvBytes, span)
	key := llm.StepKey(s.digest, st.Chunk)
	devKV := s.devBase
	devIds := s.devBase + llmIdsOff
	devOut := s.devBase + llmOutOff

	var cmds []xpu.Command
	name := func(kind string) string {
		return fmt.Sprintf("llm-%s/t%d/s%d", kind, t.Index, s.devSlot)
	}
	if st.Kind == llm.StepPrefill {
		// The once-per-session KV crossing: sealed, staged, pinned, and
		// from here on only referenced by device-local kernel reads.
		// Recorded on the session before the submit so Close owns its
		// release from here on, whatever this step's outcome.
		kvRegion, err := t.Adaptor.StageH2D(name("kv"), s.kvHost)
		if err != nil {
			return err
		}
		kvRegion.Buf.Pin()
		s.mu.Lock()
		s.kvRegion = kvRegion
		if len(kvRegion.Recs) > 0 {
			s.kvSealEpoch = kvRegion.Recs[0].Epoch
		}
		s.fence = t.Adaptor.H2DFence()
		s.mu.Unlock()
		cmds = append(cmds, xpu.Command{
			Op: xpu.OpCopyH2D, Src: kvRegion.Buf.Base(), Dst: devKV, Len: uint64(len(s.kvHost)),
		})
	}
	payload := llm.TokenIDs(s.digest, st.Chunk, s.cfg.ChunkSpan(st.Chunk), s.cfg.TokenBytes)
	if st.Kind == llm.StepPrefill {
		payload = s.prompt
	}
	ids, err := t.Adaptor.StageH2D(name("ids"), payload)
	if err != nil {
		return err
	}
	defer t.Adaptor.ReleaseRegion(ids)
	out, err := t.Adaptor.PrepareD2H(name("chunk"), span)
	if err != nil {
		return err
	}
	defer t.Adaptor.ReleaseRegion(out)

	cmds = append(cmds,
		xpu.Command{Op: xpu.OpCopyH2D, Src: ids.Buf.Base(), Dst: devIds, Len: uint64(len(payload))},
		xpu.Command{Op: xpu.OpKernel, Param: uint32(KernelXOR)<<16 | uint32(key),
			Src: devKV + uint64(off), Dst: devOut, Len: uint64(span)},
		xpu.Command{Op: xpu.OpCopyD2H, Src: devOut, Dst: out.Buf.Base(), Len: uint64(span)},
	)
	before := t.Driver.Tail()
	if err := t.Driver.Submit(cmds...); err != nil {
		return err
	}
	want := before + uint64(len(cmds))
	head, err := t.Driver.Head()
	if err != nil || head != want {
		if rerr := t.recoverSubmission(ids, before, want); rerr != nil {
			return rerr
		}
	}
	tokens, err := t.Adaptor.CollectD2H(out, span)
	if err != nil {
		return err
	}
	if st.Kind == llm.StepPrefill {
		s.mu.Lock()
		s.kvHost = nil
		s.mu.Unlock()
		s.kvStaged.Store(true)
	} else if f := s.stepFence(); !f.Valid() {
		// Rekey happened under the session: the resident KV belongs to
		// the fenced epoch and stays put; new traffic is already sealing
		// under the fresh one.
		s.kvFenced.Store(true)
	}
	s.emit(DecodeChunk{
		Index:  st.Chunk,
		Tokens: append([]byte(nil), tokens...),
		Final:  st.Chunk == s.cfg.Chunks()-1,
	})
	return nil
}

func (s *InferenceSession) stepFence() secmem.Fence {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fence
}
