// Llama-2 inference benchmark: the Figure 8 experiment as a standalone
// program. Sweeps token size (fix-batch) and batch size (fix-token) on
// a simulated A100, printing vanilla vs ccAI E2E latency, tokens per
// second, and time to first token — then drives a live streaming
// InferenceSession through the sealed datapath to show the serving API
// the analytic model describes.
package main

import (
	"context"
	"fmt"
	"log"

	"ccai"
	"ccai/internal/bench"
	"ccai/internal/llm"
	"ccai/internal/xpu"
)

func main() {
	cm := bench.Defaults()

	fmt.Println("Llama-2-7B-Chat on A100 under ccAI (virtual-time simulation)")
	fmt.Println()

	fixBatch, err := bench.Figure8FixBatch(cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.RenderFig8("fix-batch sweep (batch 1, tokens 64-2048)", fixBatch))
	fmt.Println()

	fixToken, err := bench.Figure8FixToken(cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.RenderFig8("fix-token sweep (128 tokens, batch 1-96)", fixToken))
	fmt.Println()

	// Beyond the paper's sweeps: a one-off custom configuration showing
	// how to drive the harness directly.
	w := bench.Workload{
		Device: xpu.A100,
		Session: llm.Session{
			Model: llm.Llama2_7B, PromptTokens: 900, GenTokens: 300, Batch: 4,
		},
	}
	van, cc, err := bench.Compare(w, cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom run (900-token prompt, 300 generated, batch 4):\n")
	fmt.Printf("  vanilla: E2E %.2fs, TTFT %.3fs, %.1f tok/s (model load %.2fs)\n",
		van.E2E.Seconds(), van.TTFT.Seconds(), van.TPS, van.LoadTime.Seconds())
	fmt.Printf("  ccAI:    E2E %.2fs, TTFT %.3fs, %.1f tok/s  ->  +%.2f%% latency\n",
		cc.E2E.Seconds(), cc.TTFT.Seconds(), cc.TPS, bench.Overhead(van.E2E, cc.E2E))
	fmt.Println()

	// Live serving: the streaming Session API over a protected A100
	// slice. The prompt is sealed host-side, the KV-cache is staged into
	// protected device memory exactly once at prefill, and every decode
	// chunk streams back through the sealed datapath.
	mp, err := ccai.NewMultiPlatform([]xpu.Profile{xpu.A100})
	if err != nil {
		log.Fatal(err)
	}
	defer mp.Close()
	if err := mp.EstablishTrustAll(); err != nil {
		log.Fatal(err)
	}
	sess, err := mp.Tenants[0].OpenSession(context.Background(), llm.Config{
		MaxNewTokens: 64, ChunkTokens: 8, MaxPromptTokens: 32, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	stream, err := sess.Decode(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Prefill(context.Background(), []byte("what does ccAI protect?")); err != nil {
		log.Fatal(err)
	}
	chunks, tokens := 0, 0
	for c := range stream {
		if c.Err != nil {
			log.Fatal(c.Err)
		}
		chunks++
		tokens += len(c.Tokens) / 4
	}
	fmt.Printf("live session: %d tokens streamed in %d sealed chunks (KV staged once, epoch %d)\n",
		tokens, chunks, sess.KVSealEpoch())
}
