// Tiny neural network inference through the confidential path: a
// two-layer int8 MLP whose weights and inputs cross the untrusted bus
// only as AES-GCM ciphertext, get decrypted inline by the PCIe-SC, and
// run on the simulated xPU's fully-connected kernel. The device output
// returns encrypted and is checked against a host-side reference
// implementation — the end-to-end "protect the model AND the input"
// story of the paper, functional and byte-exact.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ccai"
	"ccai/internal/attack"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

const (
	inDim     = 64
	hiddenDim = 16
	outDim    = 4
)

// reference computes the same int8 matvec+relu the device kernel runs.
func reference(w []byte, x []byte, rows, cols int) []byte {
	out := make([]byte, rows)
	for r := 0; r < rows; r++ {
		var acc int32
		for c := 0; c < cols; c++ {
			acc += int32(int8(w[r*cols+c])) * int32(int8(x[c]))
		}
		acc >>= 6
		if acc < 0 {
			acc = 0
		}
		if acc > 127 {
			acc = 127
		}
		out[r] = byte(acc)
	}
	return out
}

func main() {
	// Deterministic "proprietary" weights.
	rng := sim.NewRand(2025)
	w1 := make([]byte, hiddenDim*inDim)
	w2 := make([]byte, outDim*hiddenDim)
	rng.Bytes(w1)
	rng.Bytes(w2)
	input := make([]byte, inDim)
	rng.Bytes(input)

	plat, err := ccai.New(ccai.WithXPU(xpu.A100), ccai.WithMode(ccai.Protected))
	if err != nil {
		log.Fatal(err)
	}
	defer plat.Close()
	if err := plat.EstablishTrust(); err != nil {
		log.Fatal(err)
	}
	snoop := attack.NewSnooper()
	plat.Host.AddTap(snoop)

	// Stage model + input through encrypted bounce buffers.
	model := append(append([]byte(nil), w1...), w2...)
	modelRegion, err := plat.Adaptor.StageH2D("mlp-weights", model)
	if err != nil {
		log.Fatal(err)
	}
	defer plat.Adaptor.ReleaseRegion(modelRegion)
	inputRegion, err := plat.Adaptor.StageH2D("mlp-input", input)
	if err != nil {
		log.Fatal(err)
	}
	defer plat.Adaptor.ReleaseRegion(inputRegion)
	outRegion, err := plat.Adaptor.PrepareD2H("mlp-scores", outDim)
	if err != nil {
		log.Fatal(err)
	}
	defer plat.Adaptor.ReleaseRegion(outRegion)

	// Device memory plan: [W1 | x] for layer 1, [W2 | h] for layer 2.
	const (
		devW1 = 0x0000
		devX  = devW1 + hiddenDim*inDim
		devW2 = 0x2000
		devH  = devW2 + outDim*hiddenDim
		devY  = 0x3000
	)
	cmds := []xpu.Command{
		{Op: xpu.OpCopyH2D, Src: modelRegion.Buf.Base(), Dst: devW1, Len: hiddenDim * inDim},
		{Op: xpu.OpCopyH2D, Src: modelRegion.Buf.Base() + hiddenDim*inDim, Dst: devW2, Len: outDim * hiddenDim},
		{Op: xpu.OpCopyH2D, Src: inputRegion.Buf.Base(), Dst: devX, Len: inDim},
		{Op: xpu.OpKernel, Param: xpu.KernelMatVecRelu<<16 | inDim, Src: devW1, Dst: devH, Len: hiddenDim},
		{Op: xpu.OpKernel, Param: xpu.KernelMatVecRelu<<16 | hiddenDim, Src: devW2, Dst: devY, Len: outDim},
		{Op: xpu.OpCopyD2H, Src: devY, Dst: outRegion.Buf.Base(), Len: outDim},
	}
	if err := plat.Driver.Submit(cmds...); err != nil {
		log.Fatal(err)
	}
	head, err := plat.Driver.Head()
	if err != nil {
		log.Fatal(err)
	}
	if head != uint64(len(cmds)) {
		log.Fatalf("device executed %d/%d commands", head, len(cmds))
	}
	scores, err := plat.Adaptor.CollectD2H(outRegion, outDim)
	if err != nil {
		log.Fatal(err)
	}

	// Host-side reference.
	hidden := reference(w1, input, hiddenDim, inDim)
	want := reference(w2, hidden, outDim, hiddenDim)

	fmt.Printf("device scores:    %v\n", scores)
	fmt.Printf("reference scores: %v\n", want)
	fmt.Printf("match: %v\n", bytes.Equal(scores, want))
	fmt.Printf("weights visible to bus snooper: %v\n", snoop.SawPlaintext(w1[:48]))
	fmt.Printf("input visible to bus snooper:   %v\n", snoop.SawPlaintext(input[:48]))
	st := plat.SC.Stats()
	fmt.Printf("PCIe-SC: %d chunks decrypted inline, %d results encrypted\n",
		st.DecryptedChunks, st.EncryptedChunks)
}
