// Adversary example: the paper's §8.2 security analysis run live. Each
// scenario aims one attack class from the threat model at a protected
// platform and reports the defence that stopped it. The first scenario
// runs against a *vanilla* platform to show the attacks are real.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ccai"
	"ccai/internal/attack"
	"ccai/internal/core"
	"ccai/internal/pcie"
	"ccai/internal/xpu"
)

var secret = []byte("PROPRIETARY-LLM-WEIGHTS-BLOCK-7f3a")

func freshPlatform(mode ccai.Mode) *ccai.Platform {
	p, err := ccai.New(ccai.WithXPU(xpu.A100), ccai.WithMode(mode))
	if err != nil {
		log.Fatal(err)
	}
	if err := p.EstablishTrust(); err != nil {
		log.Fatal(err)
	}
	return p
}

func scenario(name string, fn func() string) {
	fmt.Printf("== %s\n", name)
	fmt.Printf("   %s\n\n", fn())
}

func main() {
	scenario("bus snooping on an UNPROTECTED platform (baseline)", func() string {
		p := freshPlatform(ccai.Vanilla)
		defer p.Close()
		snoop := attack.NewSnooper()
		p.Host.AddTap(snoop)
		if _, err := p.RunTask(ccai.Task{Input: secret, Kernel: ccai.KernelAdd, Param: 0}); err != nil {
			return "task failed: " + err.Error()
		}
		if snoop.SawPlaintext(secret) {
			return "LEAKED: the snooper read the model weights straight off the bus"
		}
		return "unexpectedly nothing leaked"
	})

	scenario("bus snooping with ccAI", func() string {
		p := freshPlatform(ccai.Protected)
		defer p.Close()
		snoop := attack.NewSnooper()
		p.Host.AddTap(snoop)
		if _, err := p.RunTask(ccai.Task{Input: secret, Kernel: ccai.KernelAdd, Param: 0}); err != nil {
			return "task failed: " + err.Error()
		}
		if snoop.SawPlaintext(secret) {
			return "BROKEN: plaintext on the untrusted bus"
		}
		return fmt.Sprintf("defended: %d payload bytes captured, all ciphertext (A2 encryption)", snoop.PayloadBytes())
	})

	scenario("in-flight tampering with encrypted data", func() string {
		p := freshPlatform(ccai.Protected)
		defer p.Close()
		t := &attack.Tamperer{Match: func(pk *pcie.Packet) bool {
			// Target ciphertext completions toward the SC. Submission-ring
			// fetches are exact RingSlotSize multiples and are skipped:
			// corrupting ring framing is a separate fail-closed path, and a
			// flip in a slot's dead padding would make the scenario vacuous.
			return pk.Kind == pcie.CplD && pk.Requester == ccai.SCID &&
				len(pk.Payload)%core.RingSlotSize != 0
		}, Count: 1}
		p.Host.AddTap(t)
		out, err := p.RunTask(ccai.Task{Input: secret, Kernel: ccai.KernelAdd, Param: 0})
		if t.Tampered() == 0 {
			return "tamperer never fired; scenario vacuous"
		}
		if p.SC.Stats().AuthFailures == 0 {
			return "BROKEN: corrupted packet was not detected"
		}
		if err == nil {
			if !bytes.Equal(out, secret) {
				return "BROKEN: computed on corrupted data"
			}
			return fmt.Sprintf("defended: GCM tag mismatch rejected the packet (%d auth failures), task recovered with correct output",
				p.SC.Stats().AuthFailures)
		}
		return fmt.Sprintf("defended: GCM tag mismatch stopped the task (%d auth failures recorded)",
			p.SC.Stats().AuthFailures)
	})

	scenario("replaying captured encrypted traffic", func() string {
		p := freshPlatform(ccai.Protected)
		defer p.Close()
		rec := &attack.Recorder{Match: func(pk *pcie.Packet) bool { return pk.Kind == pcie.MWr }}
		p.Host.AddTap(rec)
		if _, err := p.RunTask(ccai.Task{Input: secret, Kernel: ccai.KernelAdd, Param: 0}); err != nil {
			return "task failed: " + err.Error()
		}
		before := p.SC.Stats().DecryptedChunks
		rec.Replay(p.Host)
		if p.SC.Stats().DecryptedChunks != before {
			return "BROKEN: replayed chunks were decrypted again"
		}
		return fmt.Sprintf("defended: %d replayed packets, zero fresh decryptions (IV counter discipline)", len(rec.Captured))
	})

	scenario("rogue TVM driving the xPU", func() string {
		p := freshPlatform(ccai.Protected)
		defer p.Close()
		rogue := &attack.RogueRequester{ID: pcie.MakeID(0, 9, 0), Bus: p.Host}
		rogue.Write(0xd000_0010, []byte{1, 0, 0, 0, 0, 0, 0, 0}) // doorbell
		cpl := rogue.Read(0xd000_0008, 8)                        // status
		if cpl != nil && cpl.Status == pcie.CplSuccess {
			return "BROKEN: rogue TVM reached the device"
		}
		return fmt.Sprintf("defended: L1 table dropped %d packets (fail-closed filter)",
			p.SC.Stats().Filter.Dropped)
	})

	scenario("malicious peripheral reading TVM memory", func() string {
		p := freshPlatform(ccai.Protected)
		defer p.Close()
		priv, err := p.Guest.Space.Alloc("private", "tvm-secret", 4096)
		if err != nil {
			return err.Error()
		}
		copy(priv.Bytes(), secret)
		evil := &attack.RogueRequester{ID: pcie.MakeID(3, 0, 0), Bus: p.Host}
		cpl := evil.Read(priv.Base(), 64)
		if cpl != nil && cpl.Status == pcie.CplSuccess {
			return "BROKEN: device read TVM private memory"
		}
		return fmt.Sprintf("defended: IOMMU default-deny (%d faults recorded)", len(p.IOMMU.Faults))
	})

	scenario("forged Packet Filter policy injection", func() string {
		p := freshPlatform(ccai.Protected)
		defer p.Close()
		l1Before, l2Before := p.SC.Filter().RuleCount()
		// A match-all allow rule, written in plaintext (the attacker has
		// no config-stream key to seal it).
		evil := []byte{99, 0, 0, 0, 0, 0, 4, 0}
		p.Host.Route(pcie.NewMemWrite(ccai.TVMID, 0xd010_0100, evil))
		p.Host.Route(pcie.NewMemWrite(ccai.TVMID, 0xd010_0010, []byte{1, 0, 0, 0, 0, 0, 0, 0}))
		l1After, l2After := p.SC.Filter().RuleCount()
		if l1After != l1Before || l2After != l2Before {
			return "BROKEN: unsealed policy installed"
		}
		return fmt.Sprintf("defended: sealed-config check rejected the blob (%d config rejects)",
			p.SC.Stats().ConfigRejects)
	})

	scenario("data residue after the session", func() string {
		p := freshPlatform(ccai.Protected)
		if _, err := p.RunTask(ccai.Task{Input: secret, Kernel: ccai.KernelAdd, Param: 0}); err != nil {
			return "task failed: " + err.Error()
		}
		if !p.Device.MemResidue() {
			return "test broken: no residue before teardown"
		}
		p.Close() // environment guard triggers the device clean
		if p.Device.MemResidue() {
			return "BROKEN: workload residue survives on the xPU"
		}
		return "defended: environment guard wiped device memory/registers at teardown"
	})
}
