// Attestation example: a remote user verifies a ccAI platform before
// trusting it with a workload (paper §6, Figure 6), then the delivered
// keys drive an actual confidential task. The second half repeats the
// protocol against a platform whose firmware was swapped and shows the
// verifier walking away.
package main

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"fmt"
	"log"

	"ccai"
	"ccai/internal/attest"
	"ccai/internal/hrot"
	"ccai/internal/xpu"
)

// buildPlatform provisions and boots a blade with the given firmware
// string, returning the attestation endpoint.
func buildPlatform(ca *ecdsa.PrivateKey, firmware string) (*attest.Platform, *hrot.Blade, error) {
	blade, err := hrot.NewBlade(ca)
	if err != nil {
		return nil, nil, err
	}
	var chain []hrot.BootImage
	for _, im := range []struct {
		name string
		pcr  int
		data string
	}{
		{"pcie-sc-bitstream", hrot.PCRBitstream, "filter+handlers v1.0"},
		{"hrot-firmware", hrot.PCRFirmware, firmware},
	} {
		sig, err := hrot.SignImage(ca, []byte(im.data))
		if err != nil {
			return nil, nil, err
		}
		chain = append(chain, hrot.BootImage{Name: im.name, PCR: im.pcr, Content: []byte(im.data), Signature: sig})
	}
	if err := blade.SecureBoot(&ca.PublicKey, chain); err != nil {
		return nil, nil, err
	}
	p, err := attest.NewPlatform(blade)
	return p, blade, err
}

func attestOnce(v *attest.Verifier, p *attest.Platform) error {
	if err := p.Establish(v.Hello()); err != nil {
		return err
	}
	if err := v.Establish(p.Hello()); err != nil {
		return err
	}
	if err := v.ValidateCertificates(p.Certificates()); err != nil {
		return err
	}
	ch, err := v.NewChallenge(1, []int{hrot.PCRBitstream, hrot.PCRFirmware})
	if err != nil {
		return err
	}
	quote, err := p.Respond(ch)
	if err != nil {
		return err
	}
	return v.Verify(ch, quote)
}

func main() {
	ca, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		log.Fatal(err)
	}

	// Golden platform: what the operator published measurements for.
	golden, goldenBlade, err := buildPlatform(ca, "hrot-blade fw 1.0")
	if err != nil {
		log.Fatal(err)
	}
	sel := []int{hrot.PCRBitstream, hrot.PCRFirmware}

	verifier, err := attest.NewVerifier(&ca.PublicKey)
	if err != nil {
		log.Fatal(err)
	}
	verifier.Expected = [][]byte{goldenBlade.PCRs().Snapshot(sel)}

	fmt.Println("-- attesting the genuine platform --")
	if err := attestOnce(verifier, golden); err != nil {
		log.Fatal("unexpected rejection: ", err)
	}
	fmt.Println("report verified; delivering workload keys")

	// Key delivery feeds a real protected run.
	bundle := attest.NewKeyBundle([]string{"h2d", "d2h", "config", "mmio"})
	sealed, err := verifier.Seal(bundle)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := golden.OpenBundle(sealed); err != nil {
		log.Fatal(err)
	}
	plat, err := ccai.New(ccai.WithXPU(xpu.A100), ccai.WithMode(ccai.Protected))
	if err != nil {
		log.Fatal(err)
	}
	defer plat.Close()
	if err := plat.EstablishTrust(); err != nil {
		log.Fatal(err)
	}
	out, err := plat.RunTask(ccai.Task{Input: []byte("attested workload"), Kernel: ccai.KernelAdd, Param: 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("confidential task ran after attestation: %q\n\n", out)

	// A platform running different (even validly signed) firmware does
	// not match the golden PCRs.
	fmt.Println("-- attesting a platform with swapped firmware --")
	shady, _, err := buildPlatform(ca, "hrot-blade fw 1.0-patched")
	if err != nil {
		log.Fatal(err)
	}
	verifier2, err := attest.NewVerifier(&ca.PublicKey)
	if err != nil {
		log.Fatal(err)
	}
	verifier2.Expected = [][]byte{goldenBlade.PCRs().Snapshot(sel)}
	if err := attestOnce(verifier2, shady); err != nil {
		fmt.Println("verifier rejected the platform:", err)
		fmt.Println("no keys released; the workload never leaves the user")
		return
	}
	log.Fatal("swapped firmware was accepted — attestation broken")
}
