// Multi-xPU compatibility: the paper's core claim (G1) demonstrated
// live. The SAME application bytes, the SAME unmodified driver model,
// and the SAME Adaptor run against all five devices of the evaluation
// fleet — NVIDIA A100/T4/RTX4090Ti GPUs, a Tenstorrent N150d NPU, and
// an Enflame S60 GPU — with the PCIe-SC providing identical protection
// over each, followed by the Figure 10 latency comparison.
package main

import (
	"fmt"
	"log"

	"ccai"
	"ccai/internal/attack"
	"ccai/internal/bench"
	"ccai/internal/xpu"
)

func main() {
	secret := []byte("one workload, five accelerators, zero driver changes")

	fmt.Println("functional pass: the same confidential task on every fleet device")
	for _, profile := range xpu.Fleet() {
		plat, err := ccai.New(ccai.WithXPU(profile), ccai.WithMode(ccai.Protected))
		if err != nil {
			log.Fatal(err)
		}
		if err := plat.EstablishTrust(); err != nil {
			log.Fatal(err)
		}
		snoop := attack.NewSnooper()
		plat.Host.AddTap(snoop)

		out, err := plat.RunTask(ccai.Task{Input: secret, Kernel: ccai.KernelAdd, Param: 1})
		if err != nil {
			log.Fatalf("%s: %v", profile.Name, err)
		}
		ok := len(out) == len(secret)
		for i := range secret {
			ok = ok && out[i] == secret[i]+1
		}
		plat.Close()
		fmt.Printf("  %-10s (%s, %-11s): correct=%v  leaked=%v  residue=%v\n",
			profile.Name, profile.Class, profile.Vendor, ok,
			snoop.SawPlaintext(secret), plat.Device.MemResidue())
	}

	fmt.Println()
	fmt.Println("performance pass: Figure 10 (LLM inference overhead per device)")
	rows, err := bench.Figure10XPUs(bench.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.RenderFig10(rows))
}
