// Serving: drive a two-tenant chassis through the v2 scheduler —
// admission-controlled Submit with per-request contexts, weighted fair
// scheduling, fail-fast backpressure, and a graceful drain. This is
// the always-on counterpart to examples/quickstart's one-shot task.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"ccai"
	"ccai/internal/xpu"
)

func main() {
	// 1. A chassis with two tenant slices (A100 + N150d) and the
	//    observability hub on, so the run leaves a metrics trail.
	mp, err := ccai.NewMultiPlatform([]xpu.Profile{xpu.A100, xpu.N150d})
	if err != nil {
		log.Fatal(err)
	}
	defer mp.Close()
	mp.Observe()
	if err := mp.EstablishTrustAll(); err != nil {
		log.Fatal(err)
	}

	// 2. A long-lived scheduler: tenant 1 weighted 3× tenant 0, queues
	//    bounded at 8 requests each.
	s, err := mp.NewScheduler(ccai.SchedulerConfig{
		QueueDepth: 8,
		Weights:    []int{1, 3},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Submit never blocks: each request is admitted (a Handle) or
	//    rejected immediately (ErrQueueFull once a tenant's queue is at
	//    capacity — shed load at the edge instead of buffering it).
	input := bytes.Repeat([]byte{0x5a}, 4096)
	task := ccai.Task{Input: input, Kernel: ccai.KernelXOR, Param: 0xff}
	var handles []*ccai.Handle
	admitted, rejected := 0, 0
	for i := 0; i < 24; i++ {
		h, err := s.Submit(context.Background(), ccai.TenantTask{Tenant: i % 2, Task: task})
		if errors.Is(err, ccai.ErrQueueFull) {
			rejected++
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		admitted++
		handles = append(handles, h)
	}
	fmt.Printf("admitted %d requests, shed %d at the queue edge\n", admitted, rejected)

	// 4. Collect. Handle.Wait blocks under a context and returns the
	//    request's full TenantResult record (tenant, batch index, output).
	ok := 0
	for _, h := range handles {
		res, err := h.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		if res.Output[0] == input[0]^0xff {
			ok++
		}
	}

	// 5. A request with a deadline: if it expires while queued it never
	//    touches the pipeline, and the handle reports ErrDeadlineExceeded
	//    (a cancel that lands mid-run drains safely instead — stream
	//    state is never left mid-protocol either way).
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	hd, err := s.Submit(ctx, ccai.TenantTask{Tenant: 0, Task: task})
	if err != nil {
		log.Fatal(err)
	}
	if res, err := hd.Wait(context.Background()); err != nil {
		fmt.Printf("deadline request (tenant %d): %v\n", res.Tenant, err)
	} else {
		ok++
	}
	fmt.Printf("%d results verified; deadline request waited %v in queue\n", ok, hd.QueueWait())

	// 6. Graceful drain: admission stops, everything in flight finishes.
	if err := s.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}
	snap := mp.MetricsSnapshot()
	fmt.Printf("sched.admitted{tenant=0}=%d sched.admitted{tenant=1}=%d rejected{queue_full}=%d\n",
		snap.Counters["sched.admitted{tenant=0}"],
		snap.Counters["sched.admitted{tenant=1}"],
		snap.Counters["sched.rejected{reason=queue_full}"])
}
