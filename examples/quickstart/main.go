// Quickstart: run one confidential task on a simulated A100 behind the
// PCIe Security Controller, then show the security properties that held
// while it ran: the untrusted bus never saw the plaintext, and the
// device was wiped at teardown.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ccai"
	"ccai/internal/attack"
	"ccai/internal/xpu"
)

func main() {
	// 1. Assemble a protected platform: TVM + Adaptor + PCIe-SC + A100.
	plat, err := ccai.New(ccai.WithXPU(xpu.A100), ccai.WithMode(ccai.Protected))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Establish trust: stream keys installed on the TVM and the
	//    PCIe-SC (in deployment this falls out of remote attestation;
	//    see examples/attestation).
	if err := plat.EstablishTrust(); err != nil {
		log.Fatal(err)
	}

	// 3. Put a bus snooper on the untrusted segment, as the paper's
	//    adversary would.
	snoop := attack.NewSnooper()
	plat.Host.AddTap(snoop)

	// 4. Run a confidential task through the unmodified native driver.
	secret := []byte("patient-837: tumor classifier input tensor")
	out, err := plat.RunTask(ccai.Task{Input: secret, Kernel: ccai.KernelXOR, Param: 0x00})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task output matches input (XOR 0): %v\n", bytes.Equal(out, secret))

	// 5. The adversary saw traffic — but only ciphertext.
	fmt.Printf("snooper captured %d payload bytes on the untrusted bus\n", snoop.PayloadBytes())
	fmt.Printf("plaintext visible to the snooper:  %v\n", snoop.SawPlaintext(secret))

	// 6. Teardown: keys destroyed, xPU environment cleaned.
	plat.Close()
	fmt.Printf("workload residue on the device after teardown: %v\n", plat.Device.MemResidue())

	st := plat.SC.Stats()
	fmt.Printf("PCIe-SC: %d chunks decrypted, %d encrypted, %d MACs verified, %d packets dropped\n",
		st.DecryptedChunks, st.EncryptedChunks, st.VerifiedChunks, st.Filter.Dropped)
}
