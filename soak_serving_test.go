package ccai

// Serving-plane companions to the internal/soak storm harness: the
// sustained-rekey contract (keys roll under live scheduled load with
// zero IV reuse and no service interruption) and the cancel-vs-Drain /
// cancel-vs-Shutdown races the soak's CancelRace class only brushes.
// The Concurrent tests ride the stress matrix (`make stress`) under the
// race detector with deterministic seeds.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ccai/internal/adaptor"
	"ccai/internal/core"
)

// TestSchedulerSustainedRekeyUnderLoad rolls every tenant's h2d key
// repeatedly while a live Scheduler is moving traffic: each round parks
// the stream counters a few seals short of the proactive threshold, so
// MaybeRekey must rotate mid-round. The bar: every output byte-exact,
// zero IV reuse across all rolls, epochs actually advanced, and the
// scheduler still admitting — a rekey must never drain the queue.
func TestSchedulerSustainedRekeyUnderLoad(t *testing.T) {
	mp := servingPlatform(t, 2)
	aud := newIVAuditor()
	for _, tn := range mp.Tenants {
		for _, stream := range []string{core.StreamH2D, core.StreamConfig} {
			if err := tn.Adaptor.AuditIVs(stream, aud.hook(fmt.Sprintf("t%d/%s", tn.Index, stream))); err != nil {
				t.Fatal(err)
			}
		}
		d2h, err := tn.SC.Params().Stream(core.StreamD2H)
		if err != nil {
			t.Fatal(err)
		}
		d2h.SetIVAudit(aud.hook(fmt.Sprintf("t%d/%s", tn.Index, core.StreamD2H)))
	}
	s, err := mp.NewScheduler(SchedulerConfig{QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	const rounds, perTenant = 5, 8
	for round := 0; round < rounds; round++ {
		for _, tn := range mp.Tenants {
			if err := tn.Adaptor.ForceStreamCounter(core.StreamH2D, ^uint32(0)-adaptor.RekeyThreshold-4); err != nil {
				t.Fatalf("round %d: force counter: %v", round, err)
			}
		}
		var handles []*Handle
		var inputs []Task
		for i := 0; i < perTenant; i++ {
			for tn := range mp.Tenants {
				task := schedTask(byte(round*16+i+1), 2048)
				h, err := s.Submit(context.Background(), TenantTask{Tenant: tn, Task: task})
				if err != nil {
					t.Fatalf("round %d: submit under rekey pressure: %v", round, err)
				}
				handles = append(handles, h)
				inputs = append(inputs, task)
			}
		}
		for i, h := range handles {
			out, err := mustResult(t, h)
			if err != nil {
				t.Fatalf("round %d task %d failed across a rekey: %v", round, i, err)
			}
			checkXOR(t, inputs[i].Input, out)
		}
	}

	if r := aud.reuses(); len(r) != 0 {
		t.Fatalf("IV reuse across %d rekey rounds: %v", rounds, r)
	}
	for _, tn := range mp.Tenants {
		stream := fmt.Sprintf("t%d/%s", tn.Index, core.StreamH2D)
		if got := aud.epoch(stream); got < rounds {
			t.Errorf("%s epoch = %d, want >= %d (one roll per pressured round)", stream, got, rounds)
		}
	}
	// The queue survived every roll: the scheduler is still admitting
	// and serving, not drained or closed.
	task := schedTask(0x77, 512)
	h, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task})
	if err != nil {
		t.Fatalf("scheduler stopped admitting after rekeys: %v", err)
	}
	out, err := mustResult(t, h)
	if err != nil {
		t.Fatal(err)
	}
	checkXOR(t, task.Input, out)
}

// gatedScheduler builds a scheduler whose execute path blocks on a
// gate, reporting each claim on entered — the instrument the race
// tests use to hold requests at the claim boundary deterministically.
func gatedScheduler(t *testing.T, mp *MultiPlatform, depth int) (*Scheduler, chan struct{}, chan struct{}) {
	t.Helper()
	s, err := mp.NewScheduler(SchedulerConfig{QueueDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	entered := make(chan struct{}, 64)
	s.execGate = func(int) {
		entered <- struct{}{}
		<-gate
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, gate, entered
}

// submitStorm admits n cancellable requests across the chassis and
// returns their handles, cancels, and inputs.
func submitStorm(t *testing.T, s *Scheduler, mp *MultiPlatform, n int) ([]*Handle, []context.CancelFunc, []Task) {
	t.Helper()
	handles := make([]*Handle, n)
	cancels := make([]context.CancelFunc, n)
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		tasks[i] = schedTask(byte(i+1), 1024)
		h, err := s.Submit(ctx, TenantTask{Tenant: i % len(mp.Tenants), Task: tasks[i]})
		if err != nil {
			t.Fatal(err)
		}
		handles[i], cancels[i] = h, cancel
	}
	return handles, cancels, tasks
}

// settleStorm resolves every handle after the race and enforces the
// shared invariants: a request cancelled while still queued must show a
// zero QueueWait — winning the cancel race means never having claimed a
// slot — and every request that did run must return byte-exact output.
func settleStorm(t *testing.T, handles []*Handle, tasks []Task, closedOK bool) (completed, canceledQueued, closedOut int) {
	t.Helper()
	for i, h := range handles {
		out, err := mustResult(t, h)
		switch {
		case err == nil:
			checkXOR(t, tasks[i].Input, out)
			completed++
			if h.QueueWait() <= 0 {
				t.Errorf("request %d completed without a recorded queue wait", i)
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, ErrDeadlineExceeded):
			if h.QueueWait() == 0 {
				canceledQueued++
			}
		case closedOK && errors.Is(err, ErrSchedulerClosed):
			closedOut++
			if h.QueueWait() != 0 {
				t.Errorf("request %d: closed-out while queued but QueueWait = %v", i, h.QueueWait())
			}
		default:
			t.Errorf("request %d: unexpected error %v", i, err)
		}
	}
	return completed, canceledQueued, closedOut
}

// TestSchedulerConcurrentCancelVsDrain races a seeded burst of queued
// cancellations against Drain: the drain must retire every request
// exactly once — run or cancelled, never both, never hung — and a
// cancellation that wins while queued must never claim a slot after
// the drain began.
func TestSchedulerConcurrentCancelVsDrain(t *testing.T) {
	for _, seed := range matrixSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			mp := servingPlatform(t, 2)
			const storm = 24
			s, gate, entered := gatedScheduler(t, mp, storm)
			handles, cancels, tasks := submitStorm(t, s, mp, storm)

			// Two slots (one per tenant) are claimed and gated; the rest of
			// the storm is still queued when the race starts.
			<-entered
			<-entered

			rng := rand.New(rand.NewSource(int64(seed)))
			delays := make([]time.Duration, storm)
			picks := make([]bool, storm)
			for i := range delays {
				delays[i] = time.Duration(rng.Intn(300)) * time.Microsecond
				picks[i] = rng.Intn(2) == 0
			}

			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range handles {
					if picks[i] {
						time.Sleep(delays[i])
						cancels[i]()
					}
				}
			}()
			drainErr := make(chan error, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				drainErr <- s.Drain(ctx)
			}()
			close(gate) // let claimed and surviving-queued requests flow
			wg.Wait()
			if err := <-drainErr; err != nil {
				t.Fatalf("drain under cancel storm: %v", err)
			}

			completed, canceledQueued, _ := settleStorm(t, handles, tasks, false)
			if completed+canceledQueued > storm {
				t.Fatalf("request retired twice: %d completed + %d queue-cancelled > %d submitted",
					completed, canceledQueued, storm)
			}
			if completed == 0 {
				t.Fatal("drain completed nothing — the race test was vacuous")
			}
			if s.Pending() != 0 {
				t.Fatalf("drain returned with %d requests still pending", s.Pending())
			}
			if _, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: schedTask(9, 64)}); !errors.Is(err, ErrSchedulerClosed) {
				t.Fatalf("post-drain submit: err = %v, want ErrSchedulerClosed", err)
			}
		})
	}
}

// TestSchedulerConcurrentCancelVsShutdown is the same race against
// Shutdown, whose contract differs: still-queued survivors are closed
// out with ErrSchedulerClosed rather than run. The invariants stand —
// every handle resolves exactly once, queue-side losers never show a
// dispatch, and the in-flight gated requests drain to completion.
func TestSchedulerConcurrentCancelVsShutdown(t *testing.T) {
	for _, seed := range matrixSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			mp := servingPlatform(t, 2)
			const storm = 24
			s, gate, entered := gatedScheduler(t, mp, storm)
			handles, cancels, tasks := submitStorm(t, s, mp, storm)

			<-entered
			<-entered

			rng := rand.New(rand.NewSource(int64(seed) ^ 0x5d))
			delays := make([]time.Duration, storm)
			picks := make([]bool, storm)
			for i := range delays {
				delays[i] = time.Duration(rng.Intn(300)) * time.Microsecond
				picks[i] = rng.Intn(2) == 0
			}

			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < storm; i++ {
					if picks[i] {
						time.Sleep(delays[i])
						cancels[i]()
					}
				}
			}()
			shutErr := make(chan error, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				shutErr <- s.Shutdown(ctx)
			}()
			// Hold the gate until the state flip is observable (admission
			// rejects with ErrSchedulerClosed): both slots stay occupied, so
			// nothing queued can be claimed while the shutdown races the
			// cancel storm. Probes admitted before the flip join the storm
			// and must be closed out like any other queued request.
			probeTask := schedTask(0xee, 64)
			for {
				h, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: probeTask})
				if err == nil {
					handles = append(handles, h)
					tasks = append(tasks, probeTask)
					time.Sleep(20 * time.Microsecond)
					continue
				}
				if errors.Is(err, ErrSchedulerClosed) {
					break
				}
				if errors.Is(err, ErrQueueFull) {
					time.Sleep(20 * time.Microsecond)
					continue
				}
				t.Fatalf("probe submit during shutdown race: %v", err)
			}
			close(gate)
			wg.Wait()
			if err := <-shutErr; err != nil {
				t.Fatalf("shutdown under cancel storm: %v", err)
			}

			completed, _, closedOut := settleStorm(t, handles, tasks, true)
			if completed > len(mp.Tenants) {
				// Only the two slot-holding requests were ever claimable; the
				// queued bulk must be cancelled or closed out, not executed.
				t.Fatalf("shutdown executed %d requests — queued work leaked past the state flip", completed)
			}
			if closedOut == 0 {
				t.Fatal("no request was closed out by shutdown — the race test was vacuous")
			}
			if s.Pending() != 0 {
				t.Fatalf("shutdown returned with %d requests still pending", s.Pending())
			}
		})
	}
}
