package ccai

// ISSUE 9 cipher-cache lifecycle pin: the per-stream AEAD that the
// KeyStore caches for one key epoch must never serve a packet after
// MaybeRekey rotates that epoch — on either end of the link, under the
// live Scheduler. Three teeth: (1) every seal the h2d engine performs
// after the rotation carries the new epoch (the epoch sequence is
// monotone — a single post-rekey firing of the old cached cipher would
// show as an old-epoch seal); (2) traffic spanning the rotation stays
// byte-exact, which both ends can only manage if they swapped ciphers
// in lockstep; (3) a chunk sealed under the retired epoch is refused by
// the SC with a typed ErrReplay epoch mismatch — and the refusal leaves
// the live stream serving.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"ccai/internal/adaptor"
	"ccai/internal/core"
	"ccai/internal/secmem"
)

// epochOrder records the epoch of every seal in engine order, so the
// test can prove no old-epoch seal happens after the first new-epoch
// one.
type epochOrder struct {
	mu     sync.Mutex
	epochs []uint32
}

func (e *epochOrder) hook(epoch, _ uint32) {
	e.mu.Lock()
	e.epochs = append(e.epochs, epoch)
	e.mu.Unlock()
}

func (e *epochOrder) snapshot() []uint32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]uint32(nil), e.epochs...)
}

// TestRekeyEpochFencesCachedCipher drives a proactive MaybeRekey
// rotation through the live Scheduler and pins that the pre-rotation
// cached AEAD is fenced out the instant the epoch bumps.
func TestRekeyEpochFencesCachedCipher(t *testing.T) {
	mp := servingPlatform(t, 1)
	tn := mp.Tenants[0]

	scH2D, err := tn.SC.Params().Stream(core.StreamH2D)
	if err != nil {
		t.Fatal(err)
	}
	epoch0 := scH2D.Epoch()

	order := &epochOrder{}
	if err := tn.Adaptor.AuditIVs(core.StreamH2D, order.hook); err != nil {
		t.Fatal(err)
	}

	s, err := mp.NewScheduler(SchedulerConfig{QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	run := func(fill byte) {
		t.Helper()
		task := schedTask(fill, 2048)
		h, err := s.Submit(context.Background(), TenantTask{Tenant: 0, Task: task})
		if err != nil {
			t.Fatal(err)
		}
		out, err := mustResult(t, h)
		if err != nil {
			t.Fatal(err)
		}
		checkXOR(t, task.Input, out)
	}

	// Old-epoch traffic under the scheduler, so the cache is warm on
	// both ends before the rotation.
	run(0x11)
	if got := scH2D.Epoch(); got != epoch0 {
		t.Fatalf("epoch rotated prematurely: %d -> %d", epoch0, got)
	}

	// Park the send counter inside the proactive window: the next
	// staged task must trip MaybeRekey mid-serving.
	if err := tn.Adaptor.ForceStreamCounter(core.StreamH2D, ^uint32(0)-adaptor.RekeyThreshold-4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		run(byte(0x20 + i))
	}

	if got := scH2D.Epoch(); got != epoch0+1 {
		t.Fatalf("SC h2d epoch = %d after forced pressure, want %d", got, epoch0+1)
	}

	// Tooth (1): the seal-order epoch sequence is monotone. Any use of
	// the retired cached cipher after the rotation would stamp an
	// old-epoch seal behind a new-epoch one.
	seq := order.snapshot()
	sawNew := false
	for i, e := range seq {
		if e > epoch0 {
			sawNew = true
		} else if sawNew {
			t.Fatalf("seal %d/%d used retired epoch %d after rotation to %d", i, len(seq), e, epoch0+1)
		}
	}
	if !sawNew {
		t.Fatalf("audit saw %d seals but none under the new epoch", len(seq))
	}

	// Tooth (3): a chunk carrying the retired epoch is refused before
	// any cipher runs — typed, and with both epochs named. The forged
	// ciphertext never matters; the epoch gate is in front of it.
	stale := &secmem.Sealed{
		Epoch:      epoch0,
		Counter:    ^uint32(0), // beyond any accepted counter: only the epoch gate can refuse it
		Ciphertext: make([]byte, core.ChunkSize),
	}
	if _, err := scH2D.Open(stale, nil); !errors.Is(err, secmem.ErrReplay) {
		t.Fatalf("old-epoch chunk: got %v, want ErrReplay", err)
	} else if !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("old-epoch rejection not attributed to the epoch gate: %v", err)
	}

	// The refusal is stateless: the live stream keeps serving.
	run(0x7e)
	if got := scH2D.Epoch(); got != epoch0+1 {
		t.Fatalf("epoch moved again without pressure: %d", got)
	}
}
