package ccai_test

// One testing.B benchmark per table and figure of the paper's
// evaluation (§8), plus micro-benchmarks of the hot functional paths.
// Run them all with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks print the regenerated rows once (first
// iteration) and then measure harness throughput; absolute latency
// values inside the rows are virtual time, not wall-clock.

import (
	"fmt"
	"sync"
	"testing"

	"ccai"
	"ccai/internal/bench"
	"ccai/internal/xpu"
)

var printOnce sync.Map

func once(b *testing.B, key, out string) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(key, true); !done {
		fmt.Println(out)
	}
}

func BenchmarkTable1Actions(b *testing.B) {
	rows := bench.Table1Categorization()
	once(b, "t1", bench.RenderTable1(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Table1Categorization()
	}
}

func BenchmarkTable2Compatibility(b *testing.B) {
	rows := bench.Table2Compatibility()
	checks := bench.Table2Checks(true, true, true, true)
	once(b, "t2", bench.RenderTable2(rows, checks))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RenderTable2(bench.Table2Compatibility(), checks)
	}
}

func BenchmarkTable3TCB(b *testing.B) {
	rows, err := bench.Table3TCB(".")
	if err != nil {
		b.Fatal(err)
	}
	once(b, "t3", bench.RenderTable3(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3TCB("."); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8FixBatch(b *testing.B) {
	cm := bench.Defaults()
	rows, err := bench.Figure8FixBatch(cm)
	if err != nil {
		b.Fatal(err)
	}
	once(b, "f8a", bench.RenderFig8("Figure 8a/c/e — fix-batch sweep (Llama-2-7B, A100, batch 1)", rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure8FixBatch(cm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8FixToken(b *testing.B) {
	cm := bench.Defaults()
	rows, err := bench.Figure8FixToken(cm)
	if err != nil {
		b.Fatal(err)
	}
	once(b, "f8b", bench.RenderFig8("Figure 8b/d/f — fix-token sweep (Llama-2-7B, A100, 128 tokens)", rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure8FixToken(cm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9Models(b *testing.B) {
	cm := bench.Defaults()
	rows, err := bench.Figure9Models(cm)
	if err != nil {
		b.Fatal(err)
	}
	once(b, "f9", bench.RenderFig9(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure9Models(cm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10XPUs(b *testing.B) {
	cm := bench.Defaults()
	rows, err := bench.Figure10XPUs(cm)
	if err != nil {
		b.Fatal(err)
	}
	once(b, "f10", bench.RenderFig10(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure10XPUs(cm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11Optimization(b *testing.B) {
	cm := bench.Defaults()
	tok, bat, err := bench.Figure11Optimization(cm)
	if err != nil {
		b.Fatal(err)
	}
	once(b, "f11", bench.RenderFig11(tok, bat))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Figure11Optimization(cm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12aBandwidth(b *testing.B) {
	cm := bench.Defaults()
	rows, err := bench.Figure12aBandwidth(cm)
	if err != nil {
		b.Fatal(err)
	}
	once(b, "f12a", bench.RenderFig12a(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure12aBandwidth(cm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12bKVCache(b *testing.B) {
	cm := bench.Defaults()
	rows, err := bench.Figure12bKVCache(cm)
	if err != nil {
		b.Fatal(err)
	}
	once(b, "f12b", bench.RenderFig12b(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure12bKVCache(cm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Attestation measures the full trust-establishment
// round: handshake, certificate validation, challenge, quote, verify,
// key delivery (real ECDH/ECDSA/AES-GCM, wall-clock).
func BenchmarkFigure6Attestation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAttestationRound(b)
	}
}

// --- functional micro-benchmarks ---------------------------------------------

// BenchmarkProtectedTask measures one full confidential task through
// the packet-level functional path (real AES-GCM per chunk).
func BenchmarkProtectedTask(b *testing.B) {
	plat, err := ccai.NewPlatform(ccai.Config{XPU: xpu.A100, Mode: ccai.Protected})
	if err != nil {
		b.Fatal(err)
	}
	if err := plat.EstablishTrust(); err != nil {
		b.Fatal(err)
	}
	defer plat.Close()
	input := make([]byte, 4096)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plat.RunTask(ccai.Task{Input: input, Kernel: ccai.KernelAdd, Param: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtectedTask64KiB is the same path at the transfer size the
// perf acceptance gate watches; `make profile` runs CPU and allocation
// profiles over it.
func BenchmarkProtectedTask64KiB(b *testing.B) {
	plat, err := ccai.NewPlatform(ccai.Config{XPU: xpu.A100, Mode: ccai.Protected})
	if err != nil {
		b.Fatal(err)
	}
	if err := plat.EstablishTrust(); err != nil {
		b.Fatal(err)
	}
	defer plat.Close()
	input := make([]byte, 64<<10)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plat.RunTask(ccai.Task{Input: input, Kernel: ccai.KernelAdd, Param: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtectedTaskObserved is BenchmarkProtectedTask with the
// observability layer on — the overhead acceptance gate: compare the
// two ns/op figures; instrumentation must stay within a few percent
// (span/counter work is atomic increments and slice appends, no I/O).
func BenchmarkProtectedTaskObserved(b *testing.B) {
	plat, err := ccai.NewPlatform(ccai.Config{XPU: xpu.A100, Mode: ccai.Protected, Observe: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := plat.EstablishTrust(); err != nil {
		b.Fatal(err)
	}
	defer plat.Close()
	input := make([]byte, 4096)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plat.RunTask(ccai.Task{Input: input, Kernel: ccai.KernelAdd, Param: 1}); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			// Keep retained spans bounded so the benchmark measures the
			// hot path, not allocator pressure from an ever-growing log.
			plat.Observability().T().Reset()
		}
	}
}

// BenchmarkVanillaTask is the unprotected functional baseline.
func BenchmarkVanillaTask(b *testing.B) {
	plat, err := ccai.NewPlatform(ccai.Config{XPU: xpu.A100, Mode: ccai.Vanilla})
	if err != nil {
		b.Fatal(err)
	}
	defer plat.Close()
	input := make([]byte, 4096)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plat.RunTask(ccai.Task{Input: input, Kernel: ccai.KernelAdd, Param: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the design-choice sensitivity sweeps
// (context slots, wire expansion, per-packet I/O, crypto threads).
func BenchmarkAblations(b *testing.B) {
	cm := bench.Defaults()
	out, err := bench.RenderAblations(cm)
	if err != nil {
		b.Fatal(err)
	}
	once(b, "abl", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RenderAblations(cm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiTenantTask measures a confidential task on a two-tenant
// chassis (the §9 extension) through the functional path.
func BenchmarkMultiTenantTask(b *testing.B) {
	mp, err := ccai.NewMultiPlatform([]xpu.Profile{xpu.A100, xpu.N150d})
	if err != nil {
		b.Fatal(err)
	}
	defer mp.Close()
	for _, tenant := range mp.Tenants {
		if err := tenant.EstablishTrust(); err != nil {
			b.Fatal(err)
		}
	}
	input := make([]byte, 2048)
	b.SetBytes(int64(len(input)) * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tenant := range mp.Tenants {
			if _, err := tenant.RunTask(ccai.Task{Input: input, Kernel: ccai.KernelAdd, Param: 1}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
