module ccai

go 1.24
