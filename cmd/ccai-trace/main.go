// Command ccai-trace runs a confidential task on a chosen xPU with
// packet recorders on both bus segments and prints the traffic
// breakdown: what crossed the untrusted host bus (ciphertext, tags,
// control) versus the trusted internal bus (plaintext to the device),
// plus filter statistics and the payload-entropy probe.
//
//	ccai-trace -xpu A100 -mode protected -bytes 4096
//	ccai-trace -metrics                   # print the metrics registry
//	ccai-trace -timeline trace.json       # export a Chrome trace timeline
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ccai"
	"ccai/internal/sim"
	"ccai/internal/trace"
	"ccai/internal/xpu"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ccai-trace:", err)
		os.Exit(1)
	}
}

// run is main with its environment abstracted for the CLI tests.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ccai-trace", flag.ContinueOnError)
	xpuName := fs.String("xpu", "A100", "device: A100, T4, RTX4090Ti, S60, N150d")
	mode := fs.String("mode", "protected", "protected or vanilla")
	size := fs.Int("bytes", 4096, "task input size")
	dump := fs.String("dump", "", "write a capture file of host-bus traffic to this path")
	read := fs.String("read", "", "inspect an existing capture file and exit")
	metrics := fs.Bool("metrics", false, "print the observability metrics registry after the run")
	timeline := fs.String("timeline", "", "export the span timeline as Chrome trace-event JSON to this path")
	audit := fs.Bool("audit", false, "run the telemetry-plane smoke: live scrape, tenant isolation, audit-chain verify")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *audit {
		return auditSmoke(stdout)
	}
	if *read != "" {
		return inspectCapture(stdout, *read)
	}

	profile, err := xpu.ProfileByName(*xpuName)
	if err != nil {
		return err
	}
	m := ccai.Protected
	if *mode == "vanilla" {
		m = ccai.Vanilla
	}
	observe := *metrics || *timeline != ""
	plat, err := ccai.NewPlatform(ccai.Config{XPU: profile, Mode: m, Observe: observe})
	if err != nil {
		return err
	}
	defer plat.Close()
	if err := plat.EstablishTrust(); err != nil {
		return err
	}

	hostRec := trace.NewRecorder()
	hostRec.Retain(100000)
	plat.Host.AddTap(hostRec)
	var capFile *os.File
	var capWriter *trace.Writer
	if *dump != "" {
		capFile, err = os.Create(*dump)
		if err != nil {
			return err
		}
		capWriter, err = trace.NewWriter(capFile)
		if err != nil {
			return err
		}
		var stamp sim.Time
		plat.Host.AddTap(&trace.CaptureTap{W: capWriter, Clock: func() sim.Time { stamp++; return stamp }})
	}
	var innerRec *trace.Recorder
	if plat.Internal != nil {
		innerRec = trace.NewRecorder()
		innerRec.Retain(100000)
		plat.Internal.AddTap(innerRec)
	}

	input := make([]byte, *size)
	for i := range input {
		input[i] = byte("confidential"[i%12])
	}
	out, err := plat.RunTask(ccai.Task{Input: input, Kernel: ccai.KernelXOR, Param: 0x5a})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "task complete on %s (%s mode): %d bytes in, %d bytes out\n\n",
		profile.Name, m, len(input), len(out))
	if capWriter != nil {
		if err := capWriter.Flush(); err != nil {
			return err
		}
		if err := capFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "capture: %d packets written to %s\n\n", capWriter.Count(), *dump)
	}

	fmt.Fprint(stdout, hostRec.Summary("host bus (untrusted)"))
	if innerRec != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, innerRec.Summary("internal bus (trusted, sealed chassis)"))
	}
	if plat.SC != nil {
		st := plat.SC.Stats()
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "PCIe-SC statistics:")
		fmt.Fprintf(stdout, "  filter: %d dropped, %d A2-protected, %d A3-verified, %d A4-passed\n",
			st.Filter.Dropped, st.Filter.Protected, st.Filter.Verified, st.Filter.Passed)
		fmt.Fprintf(stdout, "  handlers: %d chunks decrypted, %d encrypted, %d MACs verified, %d auth failures\n",
			st.DecryptedChunks, st.EncryptedChunks, st.VerifiedChunks, st.AuthFailures)
	}
	if *metrics {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "observability metrics:")
		fmt.Fprint(stdout, plat.MetricsSnapshot().RenderText())
	}
	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err != nil {
			return err
		}
		if err := plat.WriteTimeline(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		spans := len(plat.Observability().T().Spans())
		fmt.Fprintf(stdout, "\ntimeline: %d spans written to %s (load in chrome://tracing or Perfetto)\n", spans, *timeline)
	}
	return nil
}

// inspectCapture replays a capture file through a Recorder and prints
// its summary plus the first few packets.
func inspectCapture(stdout io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.ReadCapture(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "capture %s: %d packets\n", path, len(recs))
	rec := trace.NewRecorder()
	rec.Retain(len(recs))
	for _, r := range recs {
		rec.Tap(r.Packet)
	}
	fmt.Fprint(stdout, rec.Summary("capture"))
	limit := 10
	if len(recs) < limit {
		limit = len(recs)
	}
	fmt.Fprintf(stdout, "first %d packets:\n", limit)
	for _, r := range recs[:limit] {
		fmt.Fprintf(stdout, "  [%6d] %v\n", r.At, r.Packet)
	}
	return nil
}
