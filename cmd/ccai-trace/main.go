// Command ccai-trace runs a confidential task on a chosen xPU with
// packet recorders on both bus segments and prints the traffic
// breakdown: what crossed the untrusted host bus (ciphertext, tags,
// control) versus the trusted internal bus (plaintext to the device),
// plus filter statistics and the payload-entropy probe.
//
//	ccai-trace -xpu A100 -mode protected -bytes 4096
package main

import (
	"flag"
	"fmt"
	"os"

	"ccai"
	"ccai/internal/sim"
	"ccai/internal/trace"
	"ccai/internal/xpu"
)

func main() {
	xpuName := flag.String("xpu", "A100", "device: A100, T4, RTX4090Ti, S60, N150d")
	mode := flag.String("mode", "protected", "protected or vanilla")
	size := flag.Int("bytes", 4096, "task input size")
	dump := flag.String("dump", "", "write a capture file of host-bus traffic to this path")
	read := flag.String("read", "", "inspect an existing capture file and exit")
	flag.Parse()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "ccai-trace:", err)
		os.Exit(1)
	}
	if *read != "" {
		f, err := os.Open(*read)
		if err != nil {
			die(err)
		}
		defer f.Close()
		recs, err := trace.ReadCapture(f)
		if err != nil {
			die(err)
		}
		fmt.Printf("capture %s: %d packets\n", *read, len(recs))
		rec := trace.NewRecorder()
		rec.Retain(len(recs))
		for _, r := range recs {
			rec.Tap(r.Packet)
		}
		fmt.Print(rec.Summary("capture"))
		limit := 10
		if len(recs) < limit {
			limit = len(recs)
		}
		fmt.Printf("first %d packets:\n", limit)
		for _, r := range recs[:limit] {
			fmt.Printf("  [%6d] %v\n", r.At, r.Packet)
		}
		return
	}

	profile, err := xpu.ProfileByName(*xpuName)
	if err != nil {
		die(err)
	}
	m := ccai.Protected
	if *mode == "vanilla" {
		m = ccai.Vanilla
	}
	plat, err := ccai.NewPlatform(ccai.Config{XPU: profile, Mode: m})
	if err != nil {
		die(err)
	}
	defer plat.Close()
	if err := plat.EstablishTrust(); err != nil {
		die(err)
	}

	hostRec := trace.NewRecorder()
	hostRec.Retain(100000)
	plat.Host.AddTap(hostRec)
	var capFile *os.File
	var capWriter *trace.Writer
	if *dump != "" {
		capFile, err = os.Create(*dump)
		if err != nil {
			die(err)
		}
		capWriter, err = trace.NewWriter(capFile)
		if err != nil {
			die(err)
		}
		var stamp sim.Time
		plat.Host.AddTap(&trace.CaptureTap{W: capWriter, Clock: func() sim.Time { stamp++; return stamp }})
	}
	var innerRec *trace.Recorder
	if plat.Internal != nil {
		innerRec = trace.NewRecorder()
		innerRec.Retain(100000)
		plat.Internal.AddTap(innerRec)
	}

	input := make([]byte, *size)
	for i := range input {
		input[i] = byte("confidential"[i%12])
	}
	out, err := plat.RunTask(ccai.Task{Input: input, Kernel: ccai.KernelXOR, Param: 0x5a})
	if err != nil {
		die(err)
	}
	fmt.Printf("task complete on %s (%s mode): %d bytes in, %d bytes out\n\n",
		profile.Name, m, len(input), len(out))
	if capWriter != nil {
		if err := capWriter.Flush(); err != nil {
			die(err)
		}
		if err := capFile.Close(); err != nil {
			die(err)
		}
		fmt.Printf("capture: %d packets written to %s\n\n", capWriter.Count(), *dump)
	}

	fmt.Print(hostRec.Summary("host bus (untrusted)"))
	if innerRec != nil {
		fmt.Println()
		fmt.Print(innerRec.Summary("internal bus (trusted, sealed chassis)"))
	}
	if plat.SC != nil {
		st := plat.SC.Stats()
		fmt.Println()
		fmt.Println("PCIe-SC statistics:")
		fmt.Printf("  filter: %d dropped, %d A2-protected, %d A3-verified, %d A4-passed\n",
			st.Filter.Dropped, st.Filter.Protected, st.Filter.Verified, st.Filter.Passed)
		fmt.Printf("  handlers: %d chunks decrypted, %d encrypted, %d MACs verified, %d auth failures\n",
			st.DecryptedChunks, st.EncryptedChunks, st.VerifiedChunks, st.AuthFailures)
	}
}
