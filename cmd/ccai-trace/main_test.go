package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestCaptureDumpReadRoundTrip drives the CLI end to end: run a
// protected task dumping a host-bus capture, re-read the capture, and
// assert the re-read summary matches what the live run recorded.
func TestCaptureDumpReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	capPath := filepath.Join(dir, "host.ccap")

	var liveOut bytes.Buffer
	if err := run([]string{"-bytes", "2048", "-dump", capPath}, &liveOut); err != nil {
		t.Fatalf("dump run: %v", err)
	}
	live := liveOut.String()
	if !strings.Contains(live, "task complete on A100") {
		t.Fatalf("dump run output unexpected:\n%s", live)
	}
	m := regexp.MustCompile(`capture: (\d+) packets written`).FindStringSubmatch(live)
	if m == nil {
		t.Fatalf("no capture line in output:\n%s", live)
	}
	wantPkts := m[1]

	var readOut bytes.Buffer
	if err := run([]string{"-read", capPath}, &readOut); err != nil {
		t.Fatalf("read run: %v", err)
	}
	read := readOut.String()
	if !strings.Contains(read, fmt.Sprintf("capture %s: %s packets", capPath, wantPkts)) {
		t.Fatalf("re-read record count does not match the %s written:\n%s", wantPkts, read)
	}

	// The live host-bus summary and the replayed capture summary must
	// agree on totals (first line carries "N packets, M payload bytes").
	liveTotals := regexp.MustCompile(`segment "host bus \(untrusted\)": (.*)\n`).FindStringSubmatch(live)
	capTotals := regexp.MustCompile(`segment "capture": (.*)\n`).FindStringSubmatch(read)
	if liveTotals == nil || capTotals == nil {
		t.Fatalf("summaries missing:\nlive:\n%s\nread:\n%s", live, read)
	}
	if liveTotals[1] != capTotals[1] {
		t.Fatalf("summary mismatch: live %q vs capture %q", liveTotals[1], capTotals[1])
	}
	if !strings.Contains(read, "first 10 packets:") {
		t.Fatalf("packet preview missing:\n%s", read)
	}
}

// TestMetricsAndTimelineFlags checks the observability flags: -metrics
// prints the registry and -timeline writes a valid Chrome trace.
func TestMetricsAndTimelineFlags(t *testing.T) {
	dir := t.TempDir()
	tlPath := filepath.Join(dir, "timeline.json")

	var out bytes.Buffer
	if err := run([]string{"-bytes", "1024", "-metrics", "-timeline", tlPath}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"observability metrics:",
		"sc.decrypted_chunks",
		"driver.submits",
		"timeline:",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}

	data, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("timeline not valid JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"run_task", "classify", "seal", "open", "tag_match"} {
		if !names[want] {
			t.Fatalf("timeline missing %q span", want)
		}
	}
	// The CLI's task payload is a repeating "confidential" pattern; the
	// export must not carry it.
	if bytes.Contains(data, []byte("confidentialconfidential")) {
		t.Fatal("timeline export contains task payload")
	}
}
