package main

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"fmt"
	"io"
	"net/http"
	"strings"

	"ccai"
	"ccai/internal/adaptor"
	"ccai/internal/attack"
	"ccai/internal/core"
	"ccai/internal/hrot"
	"ccai/internal/pcie"
	"ccai/internal/telemetry"
	"ccai/internal/xpu"
)

// tamperSensor is a chassis sensor that is out of its sealed envelope.
type tamperSensor struct{}

func (tamperSensor) Name() string            { return "lid-intrusion" }
func (tamperSensor) Sample() (float64, bool) { return 1, false }

// auditSmoke is the telemetry plane's end-to-end exercise, run by
// `ccai-trace -audit` (and `make telemetry-smoke`). It stands up a
// two-tenant chassis with the telemetry plane attached, drives the
// full security lifecycle — attest, forced rekey, fail-closed
// teardown, re-trust, rogue-device filtering, seal-sensor tamper —
// under scheduled load, then proves from the outside (over HTTP) that:
//
//   - the live scrape serves Prometheus-text metrics with p50/p99
//     quantiles and task exemplars;
//   - per-tenant views are bearer-token isolated (200 / 401 / 403);
//   - the audit log verifies as an unbroken hash chain covering every
//     lifecycle event kind — and a single flipped byte, a truncated
//     tail, or a missing trailer each fail verification.
func auditSmoke(stdout io.Writer) error {
	mp, err := ccai.NewMultiPlatform(
		[]xpu.Profile{xpu.A100, xpu.T4},
		ccai.WithTelemetry(telemetry.Options{}),
	)
	if err != nil {
		return err
	}
	defer mp.Close()
	tel := mp.Telemetry()
	if err := mp.EstablishTrustAll(); err != nil {
		return err
	}

	// --- drive the lifecycle ---------------------------------------

	// Rekey pressure: park tenant 0's H2D IV counter just under the
	// rotation threshold so the next staged transfer rotates keys.
	if err := mp.Tenants[0].Adaptor.ForceStreamCounter(
		core.StreamH2D, ^uint32(0)-adaptor.RekeyThreshold-8); err != nil {
		return err
	}

	s, err := mp.NewScheduler(ccai.SchedulerConfig{})
	if err != nil {
		return err
	}
	input := bytes.Repeat([]byte("telemetry-smoke!"), 256) // 4 KiB
	var handles []*ccai.Handle
	for i := 0; i < 32; i++ {
		h, err := s.Submit(context.Background(), ccai.TenantTask{
			Tenant: i % 2, Task: ccai.Task{Input: input, Kernel: ccai.KernelXOR, Param: 0x5a},
		})
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		if _, err := h.Wait(context.Background()); err != nil {
			return fmt.Errorf("task %d: %w", i, err)
		}
	}

	// Fail-closed teardown, then re-trust under a fresh generation.
	mp.Tenants[1].Adaptor.FailClosed("smoke: induced teardown")
	if err := mp.Tenants[1].EstablishTrust(); err != nil {
		return fmt.Errorf("re-trust: %w", err)
	}

	// Rogue device: forged requester aimed at tenant 0's BAR; the L1
	// filter must drop both the write and the read.
	rr := &attack.RogueRequester{ID: pcie.MakeID(0, 9, 0), Bus: mp.Host}
	base := mp.Tenants[0].Device.BAR0().Base
	rr.Write(base+xpu.RegDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	if cpl := rr.Read(base+xpu.RegStatus, 8); cpl != nil && cpl.Status == pcie.CplSuccess {
		return fmt.Errorf("rogue requester read device state")
	}

	// Chassis seal: a blade with an out-of-envelope intrusion sensor.
	ca, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return err
	}
	blade, err := hrot.NewBlade(ca)
	if err != nil {
		return err
	}
	blade.SetObserver(mp.Obs)
	blade.AddSensor(tamperSensor{})
	if intact := blade.PollSensors(); intact {
		return fmt.Errorf("tamper sensor read as intact")
	}

	if err := s.Drain(context.Background()); err != nil {
		return err
	}

	// --- prove it over HTTP -----------------------------------------

	admin, tok0, tok1 := tel.AdminToken(), tel.TenantToken("0"), tel.TenantToken("1")
	get := func(path, token string) (int, string, error) {
		req, err := http.NewRequest("GET", tel.URL()+path, nil)
		if err != nil {
			return 0, "", err
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), err
	}

	code, metrics, err := get("/metrics", admin)
	if err != nil || code != 200 {
		return fmt.Errorf("GET /metrics: %d %v", code, err)
	}
	for _, want := range []string{
		`ccai_sched_queue_wait_ns{tenant="0",quantile="0.5"}`,
		`ccai_sched_queue_wait_ns{tenant="0",quantile="0.99"}`,
		`# {task="`, // at least one exemplar on a bucket line
		`ccai_sched_completed{tenant="0",status="ok"}`,
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("scrape missing %q", want)
		}
	}
	fmt.Fprintf(stdout, "scrape ok: %d bytes of metrics with p50/p99 and exemplars\n", len(metrics))

	type authCase struct {
		path, token string
		want        int
	}
	for _, tc := range []authCase{
		{"/metrics", "", 401},
		{"/metrics", tok0, 401},
		{"/audit", tok1, 401},
		{"/tenant/0/metrics", tok0, 200},
		{"/tenant/0/metrics", tok1, 403},
		{"/tenant/1/metrics", tok0, 403},
		{"/tenant/0/metrics", "", 401},
		{"/healthz", "", 200},
	} {
		code, _, err := get(tc.path, tc.token)
		if err != nil {
			return err
		}
		if code != tc.want {
			return fmt.Errorf("GET %s: status %d, want %d", tc.path, code, tc.want)
		}
	}
	_, t0view, err := get("/tenant/0/metrics", tok0)
	if err != nil {
		return err
	}
	if strings.Contains(t0view, `tenant="1"`) {
		return fmt.Errorf("tenant-0 view leaks tenant-1 series")
	}
	fmt.Fprintln(stdout, "tenant isolation ok: per-tenant views are token-scoped (200/401/403)")

	// --- audit chain ------------------------------------------------

	code, audit, err := get("/audit", admin)
	if err != nil || code != 200 {
		return fmt.Errorf("GET /audit: %d %v", code, err)
	}
	n, head, err := telemetry.VerifyJSONL(strings.NewReader(audit))
	if err != nil {
		return fmt.Errorf("audit chain: %w", err)
	}
	kinds := tel.Audit.CountKinds()
	for _, kind := range []string{
		"attest", "re-trust", "rekey", "fail-closed", "rogue-filtered", "seal-sensor",
	} {
		if kinds[kind] == 0 {
			return fmt.Errorf("audit log has no %q event (have %v)", kind, kinds)
		}
	}
	fmt.Fprintf(stdout, "audit chain ok: %d entries, head %s...\n", n, head[:16])
	fmt.Fprintf(stdout, "  kinds: attest=%d re-trust=%d rekey=%d fail-closed=%d rogue-filtered=%d seal-sensor=%d slo-alert=%d\n",
		kinds["attest"], kinds["re-trust"], kinds["rekey"], kinds["fail-closed"],
		kinds["rogue-filtered"], kinds["seal-sensor"], kinds["slo-alert"])

	// Tamper detection: flip one byte of one entry's detail.
	i := strings.Index(audit, "induced")
	if i < 0 {
		return fmt.Errorf("expected fail-closed detail in audit log")
	}
	tampered := []byte(audit)
	tampered[i] ^= 1
	if _, _, err := telemetry.VerifyJSONL(bytes.NewReader(tampered)); err == nil {
		return fmt.Errorf("flipped byte not detected")
	}
	// Truncation detection: drop the last entry but keep the trailer.
	lines := strings.Split(strings.TrimSpace(audit), "\n")
	short := strings.Join(append(append([]string{}, lines[:len(lines)-2]...), lines[len(lines)-1]), "\n")
	if _, _, err := telemetry.VerifyJSONL(strings.NewReader(short)); err == nil {
		return fmt.Errorf("truncation not detected")
	}
	fmt.Fprintln(stdout, "tamper evidence ok: flipped byte and truncated tail both detected")
	fmt.Fprintln(stdout, "telemetry smoke PASS")
	return nil
}
