// Command ccai-bench regenerates every table and figure of the paper's
// evaluation section on the simulated platform:
//
//	ccai-bench                  # everything
//	ccai-bench -only fig8       # one experiment (table1..3, fig8..fig12b)
//	ccai-bench -only micro      # just the end-to-end micro-benchmarks
//	ccai-bench -src /path/repo  # repository root for Table 3 LoC counts
//
// Alongside the human tables it writes BENCH_results.json — wall-clock
// micro-benchmarks of the real simulated pipeline (not the analytical
// timing model) — so the perf trajectory is machine-trackable across
// revisions. Disable with -out "".
//
// The soak harness rides the same results file:
//
//	ccai-bench -only soak -soak smoke   # CI storm, scorecard under "soak"
//	ccai-bench -soak all                # smoke + full presets
//	ccai-bench -only soak -soak smoke -soak-compare BENCH_results.json
//
// Soak scorecards are deterministic (virtual time only), so -soak-compare
// demands byte equality against the committed baseline, unlike the
// tolerance-based -compare used for wall-clock numbers.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"ccai"
	"ccai/internal/bench"
	"ccai/internal/llm"
	"ccai/internal/soak"
	"ccai/internal/telemetry"
	"ccai/internal/xpu"
)

func main() {
	only := flag.String("only", "", "run one experiment: table1,table2,table3,fig8,fig9,fig10,fig11,fig12a,fig12b,ablations,serving,breakdown,h100,decomposition,micro,soak")
	src := flag.String("src", ".", "repository root for Table 3 LoC measurement")
	out := flag.String("out", "BENCH_results.json", "machine-readable micro-benchmark results path (empty disables)")
	compare := flag.String("compare", "", "baseline BENCH_results.json to diff against; exits non-zero on >10% ns/op regression (p50/p99 get 25%/50% bands)")
	checkAllocsFlag := flag.Bool("check-allocs", false, "hard-gate task/ccAI/64KiB allocations (exit 3 when over the ceiling)")
	soakArg := flag.String("soak", "", "run the soak harness: smoke, full, or all; scorecards merge into -out under \"soak\"")
	soakCompare := flag.String("soak-compare", "", "baseline BENCH_results.json whose soak scorecards must match byte-for-byte")
	serveTel := flag.Bool("serve-telemetry", false, "attach the live telemetry plane to benchmark chassis and print scrape URLs to stderr")
	flag.Parse()

	cm := bench.Defaults()
	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "ccai-bench: %s: %v\n", name, err)
		os.Exit(1)
	}

	if want("table1") {
		fmt.Println(bench.RenderTable1(bench.Table1Categorization()))
	}
	if want("table2") {
		checks := bench.Table2Checks(true, true, true, true)
		fmt.Println(bench.RenderTable2(bench.Table2Compatibility(), checks))
	}
	if want("table3") {
		rows, err := bench.Table3TCB(*src)
		if err != nil {
			fail("table3", err)
		}
		fmt.Println(bench.RenderTable3(rows))
	}
	if want("fig8") {
		fb, err := bench.Figure8FixBatch(cm)
		if err != nil {
			fail("fig8", err)
		}
		fmt.Println(bench.RenderFig8("Figure 8a/c/e — fix-batch sweep (Llama-2-7B, A100, batch 1)", fb))
		ft, err := bench.Figure8FixToken(cm)
		if err != nil {
			fail("fig8", err)
		}
		fmt.Println(bench.RenderFig8("Figure 8b/d/f — fix-token sweep (Llama-2-7B, A100, 128 tokens)", ft))
	}
	if want("fig9") {
		rows, err := bench.Figure9Models(cm)
		if err != nil {
			fail("fig9", err)
		}
		fmt.Println(bench.RenderFig9(rows))
	}
	if want("fig10") {
		rows, err := bench.Figure10XPUs(cm)
		if err != nil {
			fail("fig10", err)
		}
		fmt.Println(bench.RenderFig10(rows))
	}
	if want("fig11") {
		tok, bat, err := bench.Figure11Optimization(cm)
		if err != nil {
			fail("fig11", err)
		}
		fmt.Println(bench.RenderFig11(tok, bat))
	}
	if want("fig12a") {
		rows, err := bench.Figure12aBandwidth(cm)
		if err != nil {
			fail("fig12a", err)
		}
		fmt.Println(bench.RenderFig12a(rows))
	}
	if want("decomposition") {
		rows, err := bench.Figure11Decomposition(cm)
		if err != nil {
			fail("decomposition", err)
		}
		fmt.Println(bench.RenderDecomposition(rows))
	}
	if want("h100") {
		rows, err := bench.H100Comparison(cm)
		if err != nil {
			fail("h100", err)
		}
		fmt.Println(bench.RenderH100Comparison(rows))
	}
	if want("breakdown") {
		w := bench.Workload{Device: xpu.A100, Session: llm.Session{
			Model: llm.Llama2_7B, PromptTokens: 512, GenTokens: 512, Batch: 1}}
		var rows []bench.Breakdown
		for _, prot := range []bench.Protection{bench.VanillaMode, bench.CCAI, bench.CCAINoOpt} {
			b, err := bench.Explain(w, prot, cm)
			if err != nil {
				fail("breakdown", err)
			}
			rows = append(rows, b)
		}
		fmt.Println(bench.RenderBreakdown(rows))
	}
	if want("serving") {
		rows, err := bench.ServingExperiment(cm, []float64{0.25, 0.5, 1.0, 1.5, 1.8})
		if err != nil {
			fail("serving", err)
		}
		fmt.Println(bench.RenderServing(rows))
	}
	if want("ablations") {
		out, err := bench.RenderAblations(cm)
		if err != nil {
			fail("ablations", err)
		}
		fmt.Println(out)
	}
	if want("fig12b") {
		rows, err := bench.Figure12bKVCache(cm)
		if err != nil {
			fail("fig12b", err)
		}
		fmt.Println(bench.RenderFig12b(rows))
	}
	if want("micro") && *out != "" {
		results, err := microBench(*serveTel)
		if err != nil {
			fail("micro", err)
		}
		// Diff against the baseline before writing: -compare and -out
		// may name the same file, and the comparison must see the old
		// numbers, not the ones we are about to write.
		code, report := 0, ""
		if *compare != "" {
			code, report = compareResults(*compare, results)
		}
		if *checkAllocsFlag {
			acode, areport := checkAllocs(results)
			report += areport
			if acode != 0 {
				code = acode // alloc gate outranks timing regressions
			}
		}
		if err := writeResults(*out, results); err != nil {
			fail("micro", err)
		}
		fmt.Println(renderMicro(*out, results))
		if report != "" {
			fmt.Print(report)
		}
		if code != 0 {
			os.Exit(code)
		}
	}
	if *soakArg != "" {
		var presets []soak.Config
		switch strings.ToLower(*soakArg) {
		case "smoke":
			presets = []soak.Config{soak.Smoke()}
		case "full":
			presets = []soak.Config{soak.Full()}
		case "all":
			presets = []soak.Config{soak.Smoke(), soak.Full()}
		default:
			fail("soak", fmt.Errorf("unknown preset %q (want smoke, full or all)", *soakArg))
		}
		code := 0
		for _, cfg := range presets {
			sc, err := soak.Run(cfg)
			if err != nil {
				fail("soak", err)
			}
			fmt.Printf("soak/%s scorecard:\n%s", cfg.Preset, sc.Marshal())
			if !sc.WithinBudgets {
				fmt.Fprintf(os.Stderr, "ccai-bench: soak/%s breached its SLO budgets or oracles\n", cfg.Preset)
				code = 1
			}
			if *soakCompare != "" {
				if err := diffSoak(*soakCompare, cfg.Preset, sc); err != nil {
					fmt.Fprintf(os.Stderr, "ccai-bench: soak-compare: %v\n", err)
					code = 1
				} else {
					fmt.Printf("soak/%s scorecard matches baseline %s byte-for-byte\n", cfg.Preset, *soakCompare)
				}
			}
			if *out != "" {
				if err := mergeSoak(*out, cfg.Preset, sc); err != nil {
					fail("soak", err)
				}
			}
		}
		if code != 0 {
			os.Exit(code)
		}
	}
}

// benchResult is one BENCH_results.json entry, mirroring testing.B's
// headline numbers so external tooling can diff runs. Task benchmarks
// additionally carry the per-iteration latency distribution's p50/p99
// so tail regressions are visible even when the mean holds steady.
type benchResult struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	P50Ns        float64 `json:"p50_ns,omitempty"`
	P99Ns        float64 `json:"p99_ns,omitempty"`
	BytesPerOp   uint64  `json:"bytes_per_op"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
	Iterations   int     `json:"iterations"`
	TokensPerSec float64 `json:"tokens_per_sec,omitempty"`
}

// allocs samples the cumulative heap-allocation count; the delta of two
// samples over a timed loop gives allocs_per_op.
func allocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// microIters bounds each micro-benchmark's sample count. Large enough
// that one scheduler preemption on a shared host does not swing the
// mean by double-digit percent (at 8 iters a single 5 ms stall read as
// +600 µs/op); still a trajectory tracker, not a statistics engine.
const microIters = 64

// microBench times the real end-to-end pipeline (wall clock, not the
// timing model): vanilla vs. protected task execution at two transfer
// sizes, the protected path with observability on — the number the
// overhead acceptance criterion watches — and with the full telemetry
// plane attached (live HTTP scrape endpoint, audit log, SLO monitors),
// the number proving the plane stays within the observability budget.
func microBench(serveTel bool) ([]benchResult, error) {
	type cfg struct {
		name      string
		mode      ccai.Mode
		observe   bool
		telemetry bool
		size      int
	}
	cases := []cfg{
		{"task/vanilla/4KiB", ccai.Vanilla, false, false, 4 << 10},
		{"task/vanilla/64KiB", ccai.Vanilla, false, false, 64 << 10},
		{"task/ccAI/4KiB", ccai.Protected, false, false, 4 << 10},
		{"task/ccAI/64KiB", ccai.Protected, false, false, 64 << 10},
		{"task/ccAI-observed/64KiB", ccai.Protected, true, false, 64 << 10},
		{"task/ccAI-telemetry/64KiB", ccai.Protected, true, true, 64 << 10},
	}
	var results []benchResult
	for _, c := range cases {
		pc := ccai.Config{Mode: c.mode, Observe: c.observe}
		if c.telemetry {
			pc.Telemetry = &telemetry.Options{}
		}
		plat, err := ccai.NewPlatform(pc)
		if err != nil {
			return nil, err
		}
		if serveTel && c.telemetry {
			fmt.Fprintf(os.Stderr, "ccai-bench: %s serving live at %s (admin token %s)\n",
				c.name, plat.Telemetry().URL(), plat.Telemetry().AdminToken())
		}
		if err := plat.EstablishTrust(); err != nil {
			plat.Close()
			return nil, err
		}
		input := make([]byte, c.size)
		for i := range input {
			input[i] = byte(i)
		}
		task := ccai.Task{Input: input, Kernel: ccai.KernelXOR, Param: 0x5a}
		if _, err := plat.RunTask(task); err != nil { // warm-up
			plat.Close()
			return nil, err
		}
		samples := make([]time.Duration, microIters)
		m0 := allocs()
		start := time.Now()
		for i := 0; i < microIters; i++ {
			t0 := time.Now()
			if _, err := plat.RunTask(task); err != nil {
				plat.Close()
				return nil, err
			}
			samples[i] = time.Since(t0)
		}
		elapsed := time.Since(start)
		m1 := allocs()
		plat.Close()
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		results = append(results, benchResult{
			Name:        c.name,
			NsPerOp:     float64(elapsed.Nanoseconds()) / microIters,
			P50Ns:       float64(samples[microIters*50/100].Nanoseconds()),
			P99Ns:       float64(samples[microIters*99/100].Nanoseconds()),
			BytesPerOp:  uint64(c.size),
			AllocsPerOp: (m1 - m0) / microIters,
			Iterations:  microIters,
		})
	}
	serving, err := servingBench()
	if err != nil {
		return nil, err
	}
	results = append(results, serving...)
	scheduled, err := scheduledBench(serveTel)
	if err != nil {
		return nil, err
	}
	results = append(results, scheduled...)
	llmRows, err := llmBench()
	if err != nil {
		return nil, err
	}
	return append(results, llmRows...), nil
}

// servingBench measures aggregate multi-tenant throughput: the same
// task mix executed serialized (one tenant at a time) and concurrently
// through MultiPlatform.RunTasks. The concurrent number divided by the
// serialized one is the serving engine's scaling factor; it only
// exceeds 1 when GOMAXPROCS allows the per-tenant pipelines to overlap.
func servingBench() ([]benchResult, error) {
	const tenants = 4
	const size = 64 << 10
	profiles := make([]xpu.Profile, tenants)
	for i := range profiles {
		profiles[i] = xpu.A100
	}
	mp, err := ccai.NewMultiPlatform(profiles)
	if err != nil {
		return nil, err
	}
	defer mp.Close()
	if err := mp.EstablishTrustAll(); err != nil {
		return nil, err
	}
	input := make([]byte, size)
	for i := range input {
		input[i] = byte(i)
	}
	var tasks []ccai.TenantTask
	for i := 0; i < microIters; i++ {
		for tn := 0; tn < tenants; tn++ {
			tasks = append(tasks, ccai.TenantTask{Tenant: tn, Task: ccai.Task{Input: input, Kernel: ccai.KernelXOR, Param: 0x5a}})
		}
	}
	// Warm-up: one task per tenant.
	for tn := 0; tn < tenants; tn++ {
		if _, err := mp.Tenants[tn].RunTask(tasks[tn].Task); err != nil {
			return nil, err
		}
	}

	m0 := allocs()
	start := time.Now()
	for _, tt := range tasks {
		if _, err := mp.Tenants[tt.Tenant].RunTask(tt.Task); err != nil {
			return nil, err
		}
	}
	serialized := time.Since(start)
	m1 := allocs()

	start = time.Now()
	for _, res := range mp.RunTasks(tasks) {
		if res.Err != nil {
			return nil, res.Err
		}
	}
	concurrent := time.Since(start)
	m2 := allocs()

	n := float64(len(tasks))
	nu := uint64(len(tasks))
	return []benchResult{
		{Name: "serve/4-tenant/serialized/64KiB", NsPerOp: float64(serialized.Nanoseconds()) / n, BytesPerOp: size, AllocsPerOp: (m1 - m0) / nu, Iterations: len(tasks)},
		{Name: "serve/4-tenant/concurrent/64KiB", NsPerOp: float64(concurrent.Nanoseconds()) / n, BytesPerOp: size, AllocsPerOp: (m2 - m1) / nu, Iterations: len(tasks)},
	}, nil
}

// scheduledBench measures sustained offered load through the v2
// Scheduler: four tenants, 64 KiB protected tasks, every request
// admitted up front (queues sized to the run) and dispatched under
// weighted-fair scheduling. It reports end-to-end ns/op for the run
// and the p99 queue wait — the admission-to-dispatch latency tail the
// serving scheduler is supposed to keep bounded.
func scheduledBench(serveTel bool) ([]benchResult, error) {
	const tenants = 4
	const size = 64 << 10
	profiles := make([]xpu.Profile, tenants)
	for i := range profiles {
		profiles[i] = xpu.A100
	}
	var options []ccai.Option
	if serveTel {
		options = append(options, ccai.WithTelemetry(telemetry.Options{}))
	}
	mp, err := ccai.NewMultiPlatform(profiles, options...)
	if err != nil {
		return nil, err
	}
	defer mp.Close()
	if serveTel {
		fmt.Fprintf(os.Stderr, "ccai-bench: serve/4-tenant/scheduled serving live at %s (admin token %s)\n",
			mp.Telemetry().URL(), mp.Telemetry().AdminToken())
	}
	if err := mp.EstablishTrustAll(); err != nil {
		return nil, err
	}
	input := make([]byte, size)
	for i := range input {
		input[i] = byte(i)
	}
	task := ccai.Task{Input: input, Kernel: ccai.KernelXOR, Param: 0x5a}
	for tn := 0; tn < tenants; tn++ { // warm-up
		if _, err := mp.Tenants[tn].RunTask(task); err != nil {
			return nil, err
		}
	}
	s, err := mp.NewScheduler(ccai.SchedulerConfig{QueueDepth: microIters})
	if err != nil {
		return nil, err
	}
	defer s.Shutdown(context.Background())

	total := microIters * tenants
	handles := make([]*ccai.Handle, 0, total)
	m0 := allocs()
	start := time.Now()
	for i := 0; i < microIters; i++ {
		for tn := 0; tn < tenants; tn++ {
			h, err := s.Submit(context.Background(), ccai.TenantTask{Tenant: tn, Task: task})
			if err != nil {
				return nil, err
			}
			handles = append(handles, h)
		}
	}
	waits := make([]time.Duration, 0, total)
	for _, h := range handles {
		if _, err := h.Result(); err != nil {
			return nil, err
		}
		waits = append(waits, h.QueueWait())
	}
	elapsed := time.Since(start)
	m1 := allocs()

	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
	p99 := waits[(len(waits)*99)/100]
	n := float64(total)
	return []benchResult{
		{Name: "serve/4-tenant/scheduled/64KiB", NsPerOp: float64(elapsed.Nanoseconds()) / n, BytesPerOp: size, AllocsPerOp: (m1 - m0) / uint64(total), Iterations: total},
		{Name: "serve/scheduled/p99-queue-wait", NsPerOp: float64(p99.Nanoseconds()), BytesPerOp: size, Iterations: total},
	}, nil
}

// llmSessions is the timed session count per llmBench case; with 64 new
// tokens per session that is 512 timed tokens per row, enough to
// amortize the one-off prefill/KV staging into a stable per-token mean.
const llmSessions = 8

// llmBench measures the token-level serving path on two xpu profiles:
// a protected streaming InferenceSession (KV sealed and staged once at
// prefill, every decode chunk through the sealed ring datapath) against
// a vanilla platform moving the same wire payloads — one KV-sized
// transfer plus one chunk-span task per decode step — with no crypto.
// It reports per-token ns, tokens/sec, and (via overheadRatios) the
// ccAI/vanilla per-token ratio the LLM-serving acceptance bar watches.
func llmBench() ([]benchResult, error) {
	cfg := llm.Config{MaxNewTokens: 64, ChunkTokens: 8, MaxPromptTokens: 16}
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	tokens := llmSessions * cfg.MaxNewTokens
	kvBytes := cfg.KVBytes(cfg.MaxPromptTokens)
	spans := make([]int, cfg.Chunks())
	wire := kvBytes // per-session wire bytes: KV once + ids up/tokens down per chunk
	for i := range spans {
		spans[i] = cfg.ChunkSpan(i)
		wire += 2 * int64(spans[i])
	}
	var results []benchResult
	for _, p := range []xpu.Profile{xpu.A100, xpu.T4} {
		ccElapsed, ccAllocs, err := llmProtected(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("llm/ccAI/%s: %w", p.Name, err)
		}
		vanElapsed, vanAllocs, err := llmVanilla(p, kvBytes, spans)
		if err != nil {
			return nil, fmt.Errorf("llm/vanilla/%s: %w", p.Name, err)
		}
		perTokenBytes := uint64(wire) / uint64(cfg.MaxNewTokens)
		results = append(results,
			benchResult{
				Name:         "llm/ccAI/" + p.Name + "/per-token",
				NsPerOp:      float64(ccElapsed.Nanoseconds()) / float64(tokens),
				BytesPerOp:   perTokenBytes,
				AllocsPerOp:  ccAllocs / uint64(tokens),
				Iterations:   tokens,
				TokensPerSec: float64(tokens) / ccElapsed.Seconds(),
			},
			benchResult{
				Name:         "llm/vanilla/" + p.Name + "/per-token",
				NsPerOp:      float64(vanElapsed.Nanoseconds()) / float64(tokens),
				BytesPerOp:   perTokenBytes,
				AllocsPerOp:  vanAllocs / uint64(tokens),
				Iterations:   tokens,
				TokensPerSec: float64(tokens) / vanElapsed.Seconds(),
			})
	}
	return results, nil
}

// llmProtected times llmSessions full streaming sessions (open, decode
// stream, prefill, drain, close) on a single-tenant protected chassis.
func llmProtected(p xpu.Profile, cfg llm.Config) (time.Duration, uint64, error) {
	mp, err := ccai.NewMultiPlatform([]xpu.Profile{p})
	if err != nil {
		return 0, 0, err
	}
	defer mp.Close()
	if err := mp.EstablishTrustAll(); err != nil {
		return 0, 0, err
	}
	prompt := []byte("ccai-bench llm per-token probe")
	run := func(seed uint64) error {
		c := cfg
		c.Seed = seed
		sess, err := mp.Tenants[0].OpenSession(context.Background(), c)
		if err != nil {
			return err
		}
		defer sess.Close()
		ch, err := sess.Decode(context.Background())
		if err != nil {
			return err
		}
		if err := sess.Prefill(context.Background(), prompt); err != nil {
			return err
		}
		for chunk := range ch {
			if chunk.Err != nil {
				return chunk.Err
			}
		}
		return nil
	}
	if err := run(0); err != nil { // warm-up
		return 0, 0, err
	}
	m0 := allocs()
	start := time.Now()
	for i := 0; i < llmSessions; i++ {
		if err := run(uint64(i + 1)); err != nil {
			return 0, 0, err
		}
	}
	return time.Since(start), allocs() - m0, nil
}

// llmVanilla times the unprotected baseline for the same session shape:
// per session one kvBytes task (the KV staging analogue) plus one task
// per decode chunk moving that chunk's span, all plain memcpy DMA.
func llmVanilla(p xpu.Profile, kvBytes int64, spans []int) (time.Duration, uint64, error) {
	plat, err := ccai.New(ccai.WithXPU(p), ccai.WithMode(ccai.Vanilla))
	if err != nil {
		return 0, 0, err
	}
	defer plat.Close()
	if err := plat.EstablishTrust(); err != nil {
		return 0, 0, err
	}
	tasks := make([]ccai.Task, 0, len(spans)+1)
	tasks = append(tasks, ccai.Task{Input: make([]byte, kvBytes), Kernel: ccai.KernelXOR, Param: 0x5a})
	for _, s := range spans {
		tasks = append(tasks, ccai.Task{Input: make([]byte, s), Kernel: ccai.KernelXOR, Param: 0x5a})
	}
	run := func() error {
		for _, tk := range tasks {
			if _, err := plat.RunTask(tk); err != nil {
				return err
			}
		}
		return nil
	}
	if err := run(); err != nil { // warm-up
		return 0, 0, err
	}
	m0 := allocs()
	start := time.Now()
	for i := 0; i < llmSessions; i++ {
		if err := run(); err != nil {
			return 0, 0, err
		}
	}
	return time.Since(start), allocs() - m0, nil
}

// benchDoc is the whole BENCH_results.json document: the wall-clock
// micro-benchmarks plus the deterministic soak scorecards, keyed by
// preset. Writers update only their own section, so regenerating the
// micro numbers keeps the committed scorecards and vice versa.
type benchDoc struct {
	Tool    string        `json:"tool"`
	Results []benchResult `json:"results,omitempty"`
	// Ratios is the per-scenario ccAI/vanilla ns-per-op overhead,
	// recomputed whenever the micro section is rewritten.
	Ratios map[string]float64         `json:"overhead_ratios,omitempty"`
	Soak   map[string]json.RawMessage `json:"soak,omitempty"`
}

// readDoc loads the existing results document; a missing or unreadable
// file yields an empty one.
func readDoc(path string) benchDoc {
	doc := benchDoc{Tool: "ccai-bench"}
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &doc)
	}
	doc.Tool = "ccai-bench"
	return doc
}

func writeDoc(path string, doc benchDoc) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeResults(path string, results []benchResult) error {
	doc := readDoc(path)
	doc.Results = results
	doc.Ratios = overheadRatios(results)
	return writeDoc(path, doc)
}

// overheadRatios pairs each task/ccAI/<size> result with its vanilla
// twin and reports the protected/vanilla ns-per-op ratio per scenario —
// the paper's Figure 8 overhead metric on the wall-clock pipeline. The
// llm/ccAI/<profile>/per-token rows pair the same way, yielding the
// per-token LLM-serving overhead under llm/<profile>/per-token.
func overheadRatios(results []benchResult) map[string]float64 {
	byName := make(map[string]float64, len(results))
	for _, r := range results {
		byName[r.Name] = r.NsPerOp
	}
	out := make(map[string]float64)
	for name, ns := range byName {
		for _, pfx := range []string{"task/ccAI/", "llm/ccAI/"} {
			rest, ok := strings.CutPrefix(name, pfx)
			if !ok {
				continue
			}
			kind := strings.TrimSuffix(pfx, "ccAI/")
			if v := byName[kind+"vanilla/"+rest]; v > 0 && ns > 0 {
				out[kind+rest] = ns / v
			}
		}
	}
	return out
}

// mergeSoak installs one preset's scorecard into the document's soak
// section, preserving every other section.
func mergeSoak(path, preset string, sc soak.Scorecard) error {
	doc := readDoc(path)
	if doc.Soak == nil {
		doc.Soak = make(map[string]json.RawMessage)
	}
	doc.Soak[preset] = json.RawMessage(bytes.TrimRight(sc.Marshal(), "\n"))
	return writeDoc(path, doc)
}

// diffSoak holds a fresh scorecard to the committed baseline: identical
// seeds must reproduce identical bytes, so any drift — a count, a
// latency digit, a violation — is a failure, not a tolerance question.
func diffSoak(path, preset string, cur soak.Scorecard) error {
	doc := readDoc(path)
	raw, ok := doc.Soak[preset]
	if !ok {
		return fmt.Errorf("%s has no soak/%s baseline", path, preset)
	}
	base, err := soak.UnmarshalScorecard(raw)
	if err != nil {
		return fmt.Errorf("%s soak/%s: %v", path, preset, err)
	}
	want, got := base.Marshal(), cur.Marshal()
	if bytes.Equal(want, got) {
		return nil
	}
	wl, gl := strings.Split(string(want), "\n"), strings.Split(string(got), "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Errorf("soak/%s diverged from baseline at line %d:\n  baseline: %s\n  current:  %s",
				preset, i+1, strings.TrimSpace(wl[i]), strings.TrimSpace(gl[i]))
		}
	}
	return fmt.Errorf("soak/%s diverged from baseline (length %d vs %d lines)", preset, len(wl), len(gl))
}

func renderMicro(path string, results []benchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "End-to-end micro-benchmarks (wall clock, %d iters, GOMAXPROCS=%d) -> %s\n",
		microIters, runtime.GOMAXPROCS(0), path)
	var serial, conc, plain, observed, telem float64
	for _, r := range results {
		fmt.Fprintf(&b, "  %-32s %14.0f ns/op %10d bytes/op %8d allocs/op", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if r.TokensPerSec > 0 {
			fmt.Fprintf(&b, " %9.0f tok/s", r.TokensPerSec)
		}
		b.WriteByte('\n')
		switch r.Name {
		case "serve/4-tenant/serialized/64KiB":
			serial = r.NsPerOp
		case "serve/4-tenant/concurrent/64KiB":
			conc = r.NsPerOp
		case "task/ccAI/64KiB":
			plain = r.NsPerOp
		case "task/ccAI-observed/64KiB":
			observed = r.NsPerOp
		case "task/ccAI-telemetry/64KiB":
			telem = r.NsPerOp
		}
	}
	if serial > 0 && conc > 0 {
		fmt.Fprintf(&b, "  serving speedup (serialized/concurrent): %.2fx\n", serial/conc)
	}
	if plain > 0 && observed > 0 && telem > 0 {
		fmt.Fprintf(&b, "  observability overhead at 64KiB: observe %+.1f%%, full telemetry plane %+.1f%%\n",
			(observed/plain-1)*100, (telem/plain-1)*100)
	}
	ratios := overheadRatios(results)
	names := make([]string, 0, len(ratios))
	for name := range ratios {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		note := ""
		if ratios[name] > ratioOverheadBand {
			note = fmt.Sprintf("  OVER BAND (%.1fx)", ratioOverheadBand)
		}
		fmt.Fprintf(&b, "  overhead ratio %-17s %.2fx ccAI/vanilla%s\n", name, ratios[name], note)
	}
	return b.String()
}

// regressionTolerance is the relative ns/op slowdown -compare treats as
// a regression. The latency tails get wider bands — a single scheduler
// preemption lands squarely in the p99 — so only gross tail blow-ups
// fail the run.
const (
	regressionTolerance = 0.10
	p50Tolerance        = 0.25
	p99Tolerance        = 0.50
)

// ratioOverheadBand is the advisory ceiling for the per-scenario
// ccAI/vanilla overhead ratio. The paper's 2x bar assumes a vanilla
// baseline that pays real PCIe DMA latencies; in this process-local
// simulation vanilla moves bytes by memcpy with zero crypto, while the
// protected path pays the full AES-GCM floor (~105 µs per 64 KiB
// task), so the honest measured ratios land between ~2.5x and ~5.5x
// run to run (the vanilla denominator is tens of microseconds and
// swings with host noise; fixed protocol costs dominate at 4 KiB).
// The band flags structural drift above that reality; it is a soft
// gate — reported loudly, never an exit failure — because the ratio's
// denominator is the noisiest number in the file. Absolute
// protected-path ns/op (the 10% band above) and the alloc ceiling are
// the hard gates.
const ratioOverheadBand = 8.0

// taskAllocCeiling is the -check-allocs hard gate for task/ccAI/64KiB,
// mirrored by TestTaskAllocBudget: 1817 (seed) -> 908 -> 480 after the
// overlapped-data-plane wave (measured ~330/op).
const taskAllocCeiling = 480

// checkAllocs enforces the hard allocation gate; unlike the tolerance
// comparisons this is not timing-sensitive, so it always fails loudly
// (dedicated exit code 3 lets CI treat it as a hard failure while
// keeping wall-clock regressions advisory).
func checkAllocs(results []benchResult) (int, string) {
	for _, r := range results {
		if r.Name != "task/ccAI/64KiB" {
			continue
		}
		if r.AllocsPerOp > taskAllocCeiling {
			return 3, fmt.Sprintf("ccai-bench: check-allocs: task/ccAI/64KiB allocates %d/op; hard ceiling is %d/op\n",
				r.AllocsPerOp, taskAllocCeiling)
		}
		return 0, fmt.Sprintf("check-allocs: task/ccAI/64KiB %d allocs/op within ceiling %d\n", r.AllocsPerOp, taskAllocCeiling)
	}
	return 3, "ccai-bench: check-allocs: no task/ccAI/64KiB result to gate\n"
}

// compareResults diffs the current run against a previously written
// BENCH_results.json. Every matched benchmark's delta is reported;
// exceeding regressionTolerance on ns/op makes the run fail (exit 1).
// allocs/op deltas are informational only: they are noisy at small
// iteration counts and gated by tests instead.
func compareResults(path string, cur []benchResult) (int, string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 1, fmt.Sprintf("ccai-bench: compare: %v\n", err)
	}
	var doc struct {
		Results []benchResult `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 1, fmt.Sprintf("ccai-bench: compare: %s: %v\n", path, err)
	}
	base := make(map[string]benchResult, len(doc.Results))
	for _, r := range doc.Results {
		base[r.Name] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Comparison vs %s (regression = ns/op worse by >%.0f%%):\n", path, regressionTolerance*100)
	regressions := 0
	for _, r := range cur {
		// Soft SLO gate on the scheduled-serve latency tail: over budget
		// is reported loudly but does not fail the run, since absolute
		// wall time on a shared host is advisory (the soak's virtual
		// budgets are the hard ones).
		budgetNote := ""
		if r.Name == "serve/scheduled/p99-queue-wait" && r.NsPerOp > float64(soak.ScheduledP99WaitBudget) {
			budgetNote = fmt.Sprintf("  OVER BUDGET (SLO %d ms)", soak.ScheduledP99WaitBudget/int64(time.Millisecond))
		}
		old, ok := base[r.Name]
		if !ok || old.NsPerOp <= 0 {
			fmt.Fprintf(&b, "  %-32s %14.0f ns/op   (no baseline)%s\n", r.Name, r.NsPerOp, budgetNote)
			continue
		}
		delta := (r.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
		mark := budgetNote
		if delta > regressionTolerance*100 {
			mark += "  REGRESSION"
			regressions++
		}
		// Tail bands: gate p50/p99 only when both runs carry them, with
		// tolerances wide enough that one preempted iteration cannot flake
		// the gate while a structural tail blow-up still fails it.
		tailNote := ""
		if old.P50Ns > 0 && r.P50Ns > 0 {
			d50 := (r.P50Ns - old.P50Ns) / old.P50Ns
			d99 := 0.0
			if old.P99Ns > 0 && r.P99Ns > 0 {
				d99 = (r.P99Ns - old.P99Ns) / old.P99Ns
			}
			tailNote = fmt.Sprintf("   p50 %+.0f%% p99 %+.0f%%", d50*100, d99*100)
			if d50 > p50Tolerance {
				mark += "  P50-REGRESSION"
				regressions++
			}
			if d99 > p99Tolerance {
				mark += "  P99-REGRESSION"
				regressions++
			}
		}
		allocNote := ""
		if old.AllocsPerOp > 0 || r.AllocsPerOp > 0 {
			allocNote = fmt.Sprintf("   allocs %d -> %d", old.AllocsPerOp, r.AllocsPerOp)
		}
		fmt.Fprintf(&b, "  %-32s %14.0f -> %12.0f ns/op  %+7.1f%%%s%s%s\n",
			r.Name, old.NsPerOp, r.NsPerOp, delta, tailNote, allocNote, mark)
	}
	// Soft ratio band: the ccAI/vanilla overhead per scenario, checked
	// against ratioOverheadBand. Advisory by design — the vanilla
	// denominator swings with host noise — so an excursion is shouted
	// but never fails the run.
	ratios := overheadRatios(cur)
	names := make([]string, 0, len(ratios))
	for name := range ratios {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		note := "within band"
		if ratios[name] > ratioOverheadBand {
			note = "OVER SOFT BAND (advisory)"
		}
		fmt.Fprintf(&b, "  overhead ratio %-17s %.2fx ccAI/vanilla (band %.1fx): %s\n",
			name, ratios[name], ratioOverheadBand, note)
	}
	if regressions > 0 {
		fmt.Fprintf(&b, "ccai-bench: %d benchmark(s) regressed beyond %.0f%% ns/op\n", regressions, regressionTolerance*100)
		return 1, b.String()
	}
	return 0, b.String()
}
