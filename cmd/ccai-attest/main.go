// Command ccai-attest walks through ccAI's trust establishment end to
// end (paper §6 / Figure 6): vendor provisioning, secure boot of the
// PCIe-SC with PCR measurement, chassis sealing, the four-step remote
// attestation protocol, and workload-key delivery. Pass -tamper to
// watch each defence reject a manipulated platform.
package main

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"flag"
	"fmt"
	"os"

	"ccai/internal/attest"
	"ccai/internal/core"
	"ccai/internal/hrot"
)

type sensor struct {
	name string
	ok   *bool
}

func (s sensor) Name() string            { return s.name }
func (s sensor) Sample() (float64, bool) { return 1.0, *s.ok }

func main() {
	tamper := flag.Bool("tamper", false, "tamper with firmware and chassis to demonstrate detection")
	flag.Parse()

	step := func(format string, args ...any) { fmt.Printf("== "+format+"\n", args...) }
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "ccai-attest:", err)
		os.Exit(1)
	}

	step("vendor provisioning: root CA signs the HRoT-Blade endorsement key")
	vendorCA, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		die(err)
	}
	blade, err := hrot.NewBlade(vendorCA)
	if err != nil {
		die(err)
	}

	step("secure boot: decrypt + measure bitstream, firmware, boot policy, xPU firmware")
	images := []struct {
		name string
		pcr  int
		data string
	}{
		{"pcie-sc-bitstream", hrot.PCRBitstream, "packet filter + handlers + AES-GCM-SHA engine v1.0"},
		{"hrot-firmware", hrot.PCRFirmware, "hrot-blade firmware 1.0"},
		{"boot-policy", hrot.PCRPolicy, "static L1/L2 rules for TVM 00:01.0 / xPU 02:00.0"},
		{"xpu-firmware", hrot.PCRXPU, "NVIDIA A100 550.90.07"},
	}
	var chain []hrot.BootImage
	for _, im := range images {
		content := []byte(im.data)
		if *tamper && im.name == "hrot-firmware" {
			content = append(content, []byte(" <implant>")...)
			fmt.Println("   [tamper] firmware image modified after signing")
		}
		sig, err := hrot.SignImage(vendorCA, []byte(im.data))
		if err != nil {
			die(err)
		}
		chain = append(chain, hrot.BootImage{Name: im.name, PCR: im.pcr, Content: content, Signature: sig})
	}
	if err := blade.SecureBoot(&vendorCA.PublicKey, chain); err != nil {
		fmt.Println("   secure boot REFUSED:", err)
		fmt.Println("   (fail-closed: the PCIe-SC does not come up)")
		return
	}
	fmt.Println("   boot chain verified; AK generated")
	for _, im := range images {
		pcr := blade.PCRs().Read(im.pcr)
		fmt.Printf("   PCR[%d] %-18s = %x...\n", im.pcr, im.name, pcr[:8])
	}

	step("chassis sealing: pressure/temperature sensors polled over I²C")
	intact := true
	blade.AddSensor(sensor{"pressure", &intact})
	blade.AddSensor(sensor{"temperature", &intact})
	blade.PollSensors()
	goldenSealing := blade.PCRs().Read(hrot.PCRSealing)
	if *tamper {
		intact = false
		fmt.Println("   [tamper] chassis opened mid-session")
	}
	blade.PollSensors()

	step("remote attestation (Figure 6)")
	platform, err := attest.NewPlatform(blade)
	if err != nil {
		die(err)
	}
	verifier, err := attest.NewVerifier(&vendorCA.PublicKey)
	if err != nil {
		die(err)
	}
	if err := platform.Establish(verifier.Hello()); err != nil {
		die(err)
	}
	if err := verifier.Establish(platform.Hello()); err != nil {
		die(err)
	}
	fmt.Println("   ① DHKE complete; session key derived on both sides")

	if err := verifier.ValidateCertificates(platform.Certificates()); err != nil {
		die(err)
	}
	fmt.Println("   ② EK endorsed by vendor CA; AK endorsed by EK")

	sel := []int{hrot.PCRBitstream, hrot.PCRFirmware, hrot.PCRPolicy, hrot.PCRXPU, hrot.PCRSealing}
	golden := blade.PCRs().Snapshot(sel)
	if *tamper {
		// The verifier whitelists the intact platform, not whatever the
		// platform currently reports.
		copy(golden[len(golden)-32:], goldenSealing[:])
	}
	verifier.Expected = [][]byte{golden}
	ch, err := verifier.NewChallenge(1, sel)
	if err != nil {
		die(err)
	}
	fmt.Printf("   ③ challenge: keyID=%d, %d PCRs, nonce %x...\n", ch.KeyID, len(ch.PCRSel), ch.Nonce[:8])

	quote, err := platform.Respond(ch)
	if err != nil {
		die(err)
	}
	if err := verifier.Verify(ch, quote); err != nil {
		fmt.Println("   ④ report REJECTED:", err)
		fmt.Println("   verifier refuses to release workload keys")
		return
	}
	fmt.Println("   ④ report verified: nonce fresh, signatures valid, PCRs golden")

	step("workload key delivery")
	bundle := attest.NewKeyBundle([]string{core.StreamH2D, core.StreamD2H, core.StreamConfig, core.StreamMMIO})
	sealed, err := verifier.Seal(bundle)
	if err != nil {
		die(err)
	}
	got, err := platform.OpenBundle(sealed)
	if err != nil {
		die(err)
	}
	fmt.Printf("   %d stream keys delivered under the session key: ", len(got.Streams))
	for name := range got.Streams {
		fmt.Printf("%s ", name)
	}
	fmt.Println()
	fmt.Println("trust established: the TVM and PCIe-SC can now run confidential xPU workloads")
}
