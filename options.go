package ccai

import (
	"ccai/internal/adaptor"
	"ccai/internal/llm"
	"ccai/internal/telemetry"
	"ccai/internal/xpu"
)

// Option is one functional construction option for New. Options apply
// onto a Config, so New and the (deprecated) NewPlatform build
// identical platforms; zero options means the defaults (A100, Vanilla,
// 64-entry ring, observability off).
type Option func(*Config)

// WithXPU selects the device model (xpu.A100, xpu.H100, xpu.MI300,
// ...).
func WithXPU(p xpu.Profile) Option { return func(c *Config) { c.XPU = p } }

// WithMode selects Vanilla or Protected operation.
func WithMode(m Mode) Option { return func(c *Config) { c.Mode = m } }

// WithObserve enables the observability layer: the metrics registry
// and span tracer wired through every pipeline stage.
func WithObserve() Option { return func(c *Config) { c.Observe = true } }

// WithTelemetry attaches the live telemetry plane: an HTTP server
// (Prometheus-text metrics with p50/p99 and exemplars, JSON snapshots,
// health, token-isolated per-tenant views), a hash-chained security
// audit log, and rolling-window SLO monitors with burn-rate alerts.
// Implies WithObserve. The zero Options binds loopback on an ephemeral
// port with a generated admin token — read it back via
// Telemetry().AdminToken().
func WithTelemetry(o telemetry.Options) Option {
	return func(c *Config) { opts := o; c.Telemetry = &opts; c.Observe = true }
}

// WithRingEntries sizes the command ring (default 64).
func WithRingEntries(n uint64) Option { return func(c *Config) { c.RingEntries = n } }

// WithAdaptor selects the §5 optimization set (Protected mode only);
// the default is adaptor.Optimized().
func WithAdaptor(o adaptor.Options) Option {
	return func(c *Config) { opts := o; c.Adaptor = &opts }
}

// WithGoldenFirmware sets the firmware measurement the PCIe-SC attests
// the xPU against; empty means the profile's shipped firmware.
func WithGoldenFirmware(fw string) Option { return func(c *Config) { c.GoldenFirmware = fw } }

// WithLLMEngine configures the chassis's continuous-batching inference
// engine (KV budget, session slots, step quantum, dispatcher workers).
// Only NewMultiPlatform consumes it; zero fields keep engine defaults.
func WithLLMEngine(cfg llm.EngineConfig) Option {
	return func(c *Config) { c.LLM = cfg }
}

// WithKVBudget bounds the summed KV-cache reservations of concurrently
// live inference sessions, in bytes of protected device memory — the
// admission-control knob behind Tenant.OpenSession. Shorthand for the
// KVBudget field of WithLLMEngine.
func WithKVBudget(bytes int64) Option {
	return func(c *Config) { c.LLM.KVBudget = bytes }
}

// New assembles and boots a platform — the v2 constructor:
//
//	plat, err := ccai.New(ccai.WithXPU(xpu.H100), ccai.WithMode(ccai.Protected), ccai.WithObserve())
//
// It is NewPlatform with functional options instead of a config
// struct; both remain supported, new code should use New.
func New(opts ...Option) (*Platform, error) {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewPlatform(cfg)
}
