package ccai

// §13 (DESIGN.md): the telemetry plane is confidentiality-safe. These
// tests drive a multi-tenant chassis under load with the fault matrix
// firing — forced rekey, fail-closed teardown, re-trust, rogue-device
// filtering — then scrape every telemetry endpoint and assert that
// nothing secret is exposable over HTTP: no payload canary in any
// encoding, no ciphertext or AEAD tag bytes captured off the host bus,
// no session-key material, and no cross-tenant series in tenant views.

import (
	"bytes"
	"context"
	"encoding/hex"
	"io"
	"net/http"
	"strings"
	"testing"

	"ccai/internal/adaptor"
	"ccai/internal/attack"
	"ccai/internal/core"
	"ccai/internal/pcie"
	"ccai/internal/telemetry"
	"ccai/internal/trace"
	"ccai/internal/xpu"
)

// telemetryCanary is this test's payload secret; any endpoint body
// containing it (raw, hex, either case) is a confidentiality breach.
var telemetryCanary = []byte("TELEMETRY-CANARY-SECRET-WEIGHTS-42")

func scrapeGet(t *testing.T, base, path, token string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestTelemetryEndpointsExposeNoSecrets is the secret-grep: under
// multi-tenant load with the fault matrix firing, every endpoint body
// is checked against the payload canary and against ciphertext/tag
// windows captured off the untrusted host bus. The telemetry plane
// only ever renders aggregate counters, bucket counts, and event
// kind/detail strings, so none of those bytes can appear.
func TestTelemetryEndpointsExposeNoSecrets(t *testing.T) {
	mp, err := NewMultiPlatform(
		[]xpu.Profile{xpu.A100, xpu.T4},
		WithTelemetry(telemetry.Options{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	tel := mp.Telemetry()

	rec := trace.NewRecorder()
	rec.Retain(100000)
	mp.Host.AddTap(rec)
	if err := mp.EstablishTrustAll(); err != nil {
		t.Fatal(err)
	}

	// Load with faults: rekey pressure on tenant 0, a scheduled task
	// burst carrying the canary, fail-closed + re-trust on tenant 1,
	// and a rogue requester probing tenant 0's BAR.
	if err := mp.Tenants[0].Adaptor.ForceStreamCounter(
		core.StreamH2D, ^uint32(0)-adaptor.RekeyThreshold-8); err != nil {
		t.Fatal(err)
	}
	s, err := mp.NewScheduler(SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 4096)
	for i := range input {
		input[i] = byte(i * 7)
	}
	copy(input[256:], telemetryCanary)
	copy(input[2048:], telemetryCanary)
	var handles []*Handle
	for i := 0; i < 24; i++ {
		h, err := s.Submit(context.Background(), TenantTask{
			Tenant: i % 2, Task: Task{Input: input, Kernel: KernelXOR, Param: 0x5a},
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	mp.Tenants[1].Adaptor.FailClosed("telemetry-secrecy-test")
	if err := mp.Tenants[1].EstablishTrust(); err != nil {
		t.Fatal(err)
	}
	rr := &attack.RogueRequester{ID: pcie.MakeID(0, 9, 0), Bus: mp.Host}
	base := mp.Tenants[0].Device.BAR0().Base
	rr.Write(base+xpu.RegDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	rr.Read(base+xpu.RegStatus, 8)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Forbidden bytes: the canary in every plausible text encoding,
	// plus ciphertext/tag windows off the captured host-bus packets
	// (head and tail 16 bytes of each large write — the tail window
	// covers the appended AEAD tag), raw and hex.
	forbidden := [][]byte{
		telemetryCanary,
		[]byte(hex.EncodeToString(telemetryCanary)),
		[]byte(strings.ToUpper(hex.EncodeToString(telemetryCanary))),
	}
	windows := 0
	for _, pk := range rec.Retained() {
		if pk.Kind != pcie.MWr || len(pk.Payload) < 64 {
			continue
		}
		for _, w := range [][]byte{pk.Payload[:16], pk.Payload[len(pk.Payload)-16:]} {
			forbidden = append(forbidden,
				append([]byte(nil), w...),
				[]byte(hex.EncodeToString(w)))
		}
		windows++
		if windows >= 32 {
			break
		}
	}
	if windows == 0 {
		t.Fatal("host-bus capture saw no large writes; test not exercising the bus")
	}

	admin, tok0, tok1 := tel.AdminToken(), tel.TenantToken("0"), tel.TenantToken("1")
	endpoints := []struct {
		path, token string
	}{
		{"/healthz", ""},
		{"/metrics", admin},
		{"/metrics.json", admin},
		{"/slo", admin},
		{"/audit", admin},
		{"/tenant/0/metrics", tok0},
		{"/tenant/0/metrics.json", tok0},
		{"/tenant/1/metrics", tok1},
		{"/tenant/1/metrics.json", tok1},
	}
	for _, ep := range endpoints {
		code, body := scrapeGet(t, tel.URL(), ep.path, ep.token)
		if code != 200 {
			t.Fatalf("GET %s: status %d", ep.path, code)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", ep.path)
		}
		for _, pat := range forbidden {
			if bytes.Contains(body, pat) {
				t.Fatalf("CONFIDENTIALITY BREACH: %s body contains secret bytes %q", ep.path, pat)
			}
		}
	}

	// The scrape was not vacuous: the global view carries real series
	// and the audit log recorded the induced faults.
	_, metrics := scrapeGet(t, tel.URL(), "/metrics", admin)
	for _, want := range []string{"ccai_sched_completed", `quantile="0.99"`} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("global scrape missing %q", want)
		}
	}
	_, audit := scrapeGet(t, tel.URL(), "/audit", admin)
	if _, _, err := telemetry.VerifyJSONL(bytes.NewReader(audit)); err != nil {
		t.Fatalf("audit chain: %v", err)
	}
	kinds := tel.Audit.CountKinds()
	for _, kind := range []string{"attest", "re-trust", "rekey", "fail-closed", "rogue-filtered"} {
		if kinds[kind] == 0 {
			t.Fatalf("audit log missing %q events (have %v)", kind, kinds)
		}
	}
}

// TestTelemetryTenantViewsAreIsolated is the cross-tenant half of §13:
// a tenant-scoped view, fetched with that tenant's own token, never
// names another tenant — in either exposition format.
func TestTelemetryTenantViewsAreIsolated(t *testing.T) {
	mp, err := NewMultiPlatform(
		[]xpu.Profile{xpu.A100, xpu.T4},
		WithTelemetry(telemetry.Options{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	tel := mp.Telemetry()
	if err := mp.EstablishTrustAll(); err != nil {
		t.Fatal(err)
	}
	s, err := mp.NewScheduler(SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte{0xA5}, 2048)
	for i := 0; i < 16; i++ {
		h, err := s.Submit(context.Background(), TenantTask{
			Tenant: i % 2, Task: Task{Input: input, Kernel: KernelAdd, Param: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		path, token string
		other       []string // substrings that must NOT appear
		own         string   // substring that MUST appear
	}{
		{"/tenant/0/metrics", tel.TenantToken("0"), []string{`tenant="1"`}, `tenant="0"`},
		{"/tenant/0/metrics.json", tel.TenantToken("0"), []string{"tenant=1"}, "tenant=0"},
		{"/tenant/1/metrics", tel.TenantToken("1"), []string{`tenant="0"`}, `tenant="1"`},
		{"/tenant/1/metrics.json", tel.TenantToken("1"), []string{"tenant=0"}, "tenant=1"},
	}
	for _, tc := range cases {
		code, body := scrapeGet(t, tel.URL(), tc.path, tc.token)
		if code != 200 {
			t.Fatalf("GET %s: status %d", tc.path, code)
		}
		if !strings.Contains(string(body), tc.own) {
			t.Fatalf("%s: view is empty of the tenant's own series (%q)", tc.path, tc.own)
		}
		for _, leak := range tc.other {
			if strings.Contains(string(body), leak) {
				t.Fatalf("ISOLATION BREACH: %s contains %q", tc.path, leak)
			}
		}
	}

	// And with the wrong token the view is not merely filtered — it
	// does not exist: 403 for a valid foreign token, 401 for garbage.
	if code, _ := scrapeGet(t, tel.URL(), "/tenant/0/metrics", tel.TenantToken("1")); code != 403 {
		t.Fatalf("foreign tenant token: status %d, want 403", code)
	}
	if code, _ := scrapeGet(t, tel.URL(), "/tenant/0/metrics", "not-a-token"); code != 401 {
		t.Fatalf("garbage token: status %d, want 401", code)
	}
}
